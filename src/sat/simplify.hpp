// CNF inprocessing: the classic simplification passes applied between (or
// before) incremental solve calls, with a model-reconstruction stack.
//
// The e_ij encodings of the Burch–Dill correctness formulas are large and
// highly redundant (Bryant–German–Velev): Tseitin definitions that collapse
// under unit propagation, equivalent literals from the triangle-shaped
// transitivity clauses, and functionally-defined variables that bounded
// variable elimination resolves away. The pipeline runs, per round:
//
//   1. level-0 unit propagation + clause cleanup,
//   2. SCC-based equivalent-literal substitution (binary implication graph),
//   3. subsumption and self-subsumption (occurrence-list backward pass),
//   4. vivification (assume the negated clause prefix, shorten on conflict),
//   5. failed-literal probing,
//   6. bounded variable elimination (NiVER-style: never increase the
//      clause count).
//
// SOUNDNESS CONTRACT. Every transformation is either an equivalence
// (subsumption, strengthening, units) or an equisatisfiability step with an
// inverse recorded on the Reconstructor stack (variable elimination,
// literal substitution). Reconstructor::extend() turns any model of the
// simplified CNF into a model of the original CNF over ALL original
// variables — counterexample decoding (fuzz/decode.cpp) reads primary
// inputs from the model, so the extension is not optional. Frozen
// variables (assumption literals, activation selectors) are never
// eliminated or substituted, which keeps assumption-conditional
// equisatisfiability: for every assignment of the frozen variables, the
// simplified and original CNFs agree on satisfiability.
//
// PROOF CONTRACT. With a Proof attached, every added clause is RUP with
// respect to the checker database at that point (resolvents, strengthened
// clauses, failed-literal units, substituted clauses — each is derivable
// by one unit-propagation refutation), and every deletion mirrors a
// database removal, so a solver run on the simplified CNF can append its
// learnt clauses and the combined proof RUP-checks against the ORIGINAL
// formula. Unit clauses are never deleted from the proof: the simplified
// CNF re-emits them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::sat {

struct InprocessOptions {
  bool enabled = true;   // master switch (--no-inprocess clears it)
  bool substitute = true;  // SCC equivalent-literal substitution
  bool subsume = true;     // subsumption + self-subsumption
  bool vivify = true;      // clause vivification
  bool probe = true;       // failed-literal probing
  bool varElim = true;     // bounded variable elimination
  unsigned maxRounds = 3;  // pipeline rounds (stops early at a fixpoint)
  /// Variable elimination is skipped when either polarity of the variable
  /// occurs in more than this many clauses (keeps the pass near-linear).
  unsigned elimOccLimit = 24;
  /// Elimination is performed only if it does not add more than this many
  /// clauses net (0 = NiVER: never grow the database).
  unsigned elimGrowth = 0;
  /// Eliminate gate-defined variables by substitution (SatELite): when v is
  /// functionally defined by an AND-style Tseitin gate, only gate × non-gate
  /// resolvents are generated — the rest are implied — so the growth bound
  /// passes on the definitional variables the AIG translation mass-produces.
  bool elimBySubstitution = true;
  /// Deterministic work caps (logical "ticks" = clause-literal touches),
  /// so budget-capped verdicts stay machine-independent.
  std::uint64_t vivifyTickLimit = 20'000'000;
  std::uint64_t probeTickLimit = 20'000'000;
};

struct InprocessStats {
  std::uint64_t rounds = 0;
  std::uint64_t clausesBefore = 0;
  std::uint64_t clausesAfter = 0;
  std::uint64_t clausesRemoved = 0;      // subsumed + satisfied + eliminated
  std::uint64_t clausesStrengthened = 0; // self-subsumption + vivification
  std::uint64_t litsRemoved = 0;         // literals dropped by strengthening
  std::uint64_t varsEliminated = 0;      // bounded variable elimination
  std::uint64_t varsSubstituted = 0;     // equivalent-literal substitution
  std::uint64_t failedLiterals = 0;      // probing-derived units
  std::uint64_t unitsDerived = 0;        // all level-0 units found
  std::uint64_t reconstructionDepth = 0; // steps on the reconstruction stack
};

/// The inverse transformations of the satisfiability-preserving (but not
/// equivalence-preserving) passes, replayed in reverse by extend().
class Reconstructor {
 public:
  /// Record `v := value of rep` (rep a DIMACS literal of another variable).
  void pushEquivalence(std::uint32_t var, prop::CnfLit rep);
  /// Record the elimination of `var` together with all clauses that
  /// mentioned it (the clauses define the witness value).
  void pushElimination(std::uint32_t var, std::vector<prop::Clause> clauses);

  std::size_t depth() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Extend a model of the simplified CNF (DIMACS-indexed, entry 0 unused)
  /// to a model of the original CNF, in place: replays the stack top-down,
  /// so chained substitutions/eliminations resolve in dependency order.
  void extend(std::vector<bool>& model) const;

 private:
  struct Step {
    std::uint32_t var = 0;
    prop::CnfLit rep = 0;               // != 0: equivalence step
    std::vector<prop::Clause> clauses;  // rep == 0: elimination step
  };
  std::vector<Step> steps_;
};

struct SimplifyResult {
  prop::Cnf cnf;          // the simplified formula (same numVars)
  Reconstructor recon;
  InprocessStats stats;
  bool provedUnsat = false;  // simplification alone refuted the formula
};

/// Run the inprocessing pipeline on `in`. Frozen variables (DIMACS, 1-based)
/// are exempt from elimination and substitution. With a `budget`, the
/// passes poll the governor and stop early (leaving a consistent, partially
/// simplified CNF) when a budget trips — never a throw. Emits DRAT steps
/// into `proof` when given. Deterministic for fixed inputs and options.
SimplifyResult inprocess(const prop::Cnf& in, const InprocessOptions& opts,
                         Proof* proof = nullptr,
                         BudgetGovernor* budget = nullptr,
                         std::span<const std::uint32_t> frozen = {});

/// solveCnf with the inprocessing front end: simplify, solve the simplified
/// CNF, and extend a Sat model back onto the original variables. Proof
/// steps (inprocessing first, then the solver's) certify Unsat against the
/// ORIGINAL cnf. With `iopts.enabled == false` this is exactly solveCnf().
Result solveCnfInprocessed(const prop::Cnf& cnf, const InprocessOptions& iopts,
                           std::vector<bool>* model = nullptr,
                           Stats* stats = nullptr,
                           std::int64_t conflictBudget = -1,
                           Proof* proof = nullptr,
                           BudgetGovernor* budget = nullptr,
                           InprocessStats* istats = nullptr,
                           std::span<const std::uint32_t> frozen = {});

}  // namespace velev::sat
