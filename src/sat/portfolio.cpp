#include "sat/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <future>

#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::sat {

Options portfolioInstanceOptions(const PortfolioOptions& opts, unsigned i) {
  Options o = opts.base;
  if (i == 0) return o;  // deterministic baseline configuration
  o.seed = mix64(opts.baseSeed + i);
  o.randomInitPhase = (i % 2) == 1;
  o.randomDecisionFreq = 0.01 * static_cast<double>(1 + i % 4);
  o.lubyUnit = std::max(64, opts.base.lubyUnit >> (i % 3));
  return o;
}

Result solvePortfolio(const prop::Cnf& cnf, const PortfolioOptions& opts,
                      PortfolioReport* report) {
  const unsigned k = std::max(1u, opts.instances);
  // Warm-start clauses are learnt consequences, not axioms of the formula
  // — a DRAT proof built on top of them would not check against `cnf`.
  VELEV_CHECK(!(opts.wantProof && !opts.warmStart.empty()));
  Timer timer;

  // Shared inprocessing front end: simplify once, race everyone on the
  // result. Assumption variables are frozen so the simplified CNF stays
  // equisatisfiable under the assumptions.
  const prop::Cnf* problem = &cnf;
  SimplifyResult simplified;
  Proof inprocessProof;
  if (opts.inprocess.enabled) {
    std::vector<std::uint32_t> frozen;
    frozen.reserve(opts.assumptions.size());
    for (const prop::CnfLit a : opts.assumptions)
      frozen.push_back(static_cast<std::uint32_t>(a > 0 ? a : -a));
    simplified = inprocess(cnf, opts.inprocess,
                           opts.wantProof ? &inprocessProof : nullptr,
                           opts.budget, frozen);
    problem = &simplified.cnf;
    if (report) report->inprocessStats = simplified.stats;
    // When the pipeline refutes the formula outright, the simplified CNF
    // contains the empty clause and every instance below returns Unsat on
    // load — the race still runs so per-seed stats, the winner, and the
    // combined proof are reported uniformly on every path.
  }

  // Per-instance state: written only by the owning task, read after join.
  struct Slot {
    Result result = Result::Unknown;
    Stats stats;
    std::vector<bool> model;
    Proof proof;
    prop::Clause failed;
    std::vector<prop::Clause> retained;
  };
  std::vector<Slot> slots(k);
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};

  // Pool workers have no trace collector attached; carry the caller's over
  // so per-instance spans land in the same (mutex-protected) collector.
  trace::Collector* collector = trace::active();
  auto runInstance = [&, collector, problem](unsigned i) {
    trace::Use tracing(collector);
    TRACE_SPAN("sat.instance");
    Slot& slot = slots[i];
    Solver solver(portfolioInstanceOptions(opts, i));
    if (opts.wantProof) solver.setProof(&slot.proof);
    solver.setCancel(&cancel);
    solver.setBudget(opts.budget);
    solver.ensureVars(problem->numVars);
    bool ok = true, aborted = false;
    std::size_t loaded = 0;
    for (const auto& c : opts.warmStart) {
      if (!solver.addClause(c)) {
        ok = false;
        break;
      }
    }
    for (const auto& c : problem->clauses) {
      if (!ok) break;
      if (solver.cancelled() ||
          ((++loaded & 0xfffu) == 0 && solver.pollBudget())) {
        aborted = true;
        break;
      }
      if (!solver.addClause(c)) {
        ok = false;
        break;
      }
    }
    const Result r =
        aborted ? Result::Unknown
        : ok    ? solver.solve(opts.assumptions, opts.conflictBudget)
                : Result::Unsat;
    slot.stats = solver.stats();
    if (r == Result::Sat) {
      slot.model.assign(problem->numVars + 1, false);
      for (std::uint32_t v = 1; v <= problem->numVars; ++v)
        slot.model[v] = solver.modelValue(v);
    }
    if (r == Result::Unsat) slot.failed = solver.failedAssumptions();
    if (r != Result::Unknown && opts.exportLearnts)
      slot.retained = solver.retainedLearnts();
    slot.result = r;
    if (r != Result::Unknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i)))
        cancel.store(true, std::memory_order_relaxed);
    }
  };

  if (k == 1) {
    runInstance(0);
  } else {
    ThreadPool pool(k);
    std::vector<std::future<void>> done;
    done.reserve(k);
    for (unsigned i = 0; i < k; ++i)
      done.push_back(pool.submit([&runInstance, i] { runInstance(i); }));
    for (auto& f : done) f.get();
  }

  const int w = winner.load();
  if (report) {
    report->result = w >= 0 ? slots[static_cast<unsigned>(w)].result
                            : Result::Unknown;
    report->winner = w;
    report->instanceStats.clear();
    report->instanceSeeds.clear();
    report->instanceStats.reserve(k);
    report->instanceSeeds.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
      report->instanceStats.push_back(slots[i].stats);
      report->instanceSeeds.push_back(portfolioInstanceOptions(opts, i).seed);
    }
    if (w >= 0) {
      Slot& ws = slots[static_cast<unsigned>(w)];
      report->winnerSeed =
          portfolioInstanceOptions(opts, static_cast<unsigned>(w)).seed;
      report->winnerStats = ws.stats;
      report->model = std::move(ws.model);
      report->failedAssumptions = std::move(ws.failed);
      report->retainedLearnts = std::move(ws.retained);
      if (ws.result == Result::Sat && opts.inprocess.enabled)
        simplified.recon.extend(report->model);
      if (opts.wantProof && opts.inprocess.enabled) {
        // The combined proof (inprocessing derivations, then the winner's
        // learnt clauses) certifies against the ORIGINAL formula.
        report->proof = std::move(inprocessProof);
        for (auto& step : ws.proof.steps)
          report->proof.steps.push_back(std::move(step));
      } else {
        report->proof = std::move(ws.proof);
      }
    }
    report->seconds = timer.seconds();
  }
  return w >= 0 ? slots[static_cast<unsigned>(w)].result : Result::Unknown;
}

}  // namespace velev::sat
