#include "sat/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <future>

#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::sat {

Options portfolioInstanceOptions(const PortfolioOptions& opts, unsigned i) {
  Options o = opts.base;
  if (i == 0) return o;  // deterministic baseline configuration
  o.seed = mix64(opts.baseSeed + i);
  o.randomInitPhase = (i % 2) == 1;
  o.randomDecisionFreq = 0.01 * static_cast<double>(1 + i % 4);
  o.lubyUnit = std::max(64, opts.base.lubyUnit >> (i % 3));
  return o;
}

Result solvePortfolio(const prop::Cnf& cnf, const PortfolioOptions& opts,
                      PortfolioReport* report) {
  const unsigned k = std::max(1u, opts.instances);
  Timer timer;

  // Per-instance state: written only by the owning task, read after join.
  struct Slot {
    Result result = Result::Unknown;
    Stats stats;
    std::vector<bool> model;
    Proof proof;
  };
  std::vector<Slot> slots(k);
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};

  // Pool workers have no trace collector attached; carry the caller's over
  // so per-instance spans land in the same (mutex-protected) collector.
  trace::Collector* collector = trace::active();
  auto runInstance = [&, collector](unsigned i) {
    trace::Use tracing(collector);
    TRACE_SPAN("sat.instance");
    Slot& slot = slots[i];
    Solver solver(portfolioInstanceOptions(opts, i));
    if (opts.wantProof) solver.setProof(&slot.proof);
    solver.setCancel(&cancel);
    solver.setBudget(opts.budget);
    solver.ensureVars(cnf.numVars);
    bool ok = true, aborted = false;
    std::size_t loaded = 0;
    for (const auto& c : cnf.clauses) {
      if (solver.cancelled() ||
          ((++loaded & 0xfffu) == 0 && solver.pollBudget())) {
        aborted = true;
        break;
      }
      if (!solver.addClause(c)) {
        ok = false;
        break;
      }
    }
    const Result r = aborted ? Result::Unknown
                   : ok      ? solver.solve(opts.conflictBudget)
                             : Result::Unsat;
    slot.stats = solver.stats();
    if (r == Result::Sat) {
      slot.model.assign(cnf.numVars + 1, false);
      for (std::uint32_t v = 1; v <= cnf.numVars; ++v)
        slot.model[v] = solver.modelValue(v);
    }
    slot.result = r;
    if (r != Result::Unknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i)))
        cancel.store(true, std::memory_order_relaxed);
    }
  };

  if (k == 1) {
    runInstance(0);
  } else {
    ThreadPool pool(k);
    std::vector<std::future<void>> done;
    done.reserve(k);
    for (unsigned i = 0; i < k; ++i)
      done.push_back(pool.submit([&runInstance, i] { runInstance(i); }));
    for (auto& f : done) f.get();
  }

  const int w = winner.load();
  if (report) {
    report->result = w >= 0 ? slots[static_cast<unsigned>(w)].result
                            : Result::Unknown;
    report->winner = w;
    report->instanceStats.clear();
    report->instanceSeeds.clear();
    report->instanceStats.reserve(k);
    report->instanceSeeds.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
      report->instanceStats.push_back(slots[i].stats);
      report->instanceSeeds.push_back(portfolioInstanceOptions(opts, i).seed);
    }
    if (w >= 0) {
      Slot& ws = slots[static_cast<unsigned>(w)];
      report->winnerSeed =
          portfolioInstanceOptions(opts, static_cast<unsigned>(w)).seed;
      report->winnerStats = ws.stats;
      report->model = std::move(ws.model);
      report->proof = std::move(ws.proof);
    }
    report->seconds = timer.seconds();
  }
  return w >= 0 ? slots[static_cast<unsigned>(w)].result : Result::Unknown;
}

}  // namespace velev::sat
