// Incremental SAT session: one long-lived Solver shared by a sequence of
// closely-related formulas (grid cells of the same strategy), using the
// activation-selector encoding:
//
//   * each call i gets a fresh selector variable s_i,
//   * every clause C of call i is loaded as C ∨ ¬s_i,
//   * the call is solved under the assumption s_i (plus any caller
//     assumptions), so only "its" clauses are active,
//   * the selector stays ACTIVE until a different formula arrives: a call
//     whose clauses and frozen assumption variables are identical to the
//     previous call's is solved under the same selector with nothing
//     reloaded or re-simplified, so its learnt clauses (all guarded by
//     ¬s_i) stay live — repeated solves under varying assumptions are the
//     workload where incremental reuse pays,
//   * when a different formula does arrive, the old selector is retired
//     with the permanent unit ¬s_i and every satisfied clause (the retired
//     call's clauses and its selector-guarded learnts) is purged from the
//     watch lists, so later calls never pay propagation cost for dead
//     clauses.
//
// Variable mapping keeps distinct calls' variables IDENTIFIED, not disjoint:
// cell variable v maps to session variable 2v-1 (odd) and selector i to 2i
// (even). Cells of one strategy share their low-numbered variables (same
// netlist skeleton), so VSIDS activities, saved phases and retained learnt
// clauses carry useful information from one cell to the next — that is the
// point of the session. The mapping is collision-free by parity.
//
// Each call's CNF is first run through sat::inprocess() in its own variable
// space (assumption variables frozen), and a Sat model is reconstructed back
// onto the ORIGINAL cell variables before being returned.
//
// SolveMemo (below) is the session's content-addressed sibling: where the
// session carries HEURISTIC state between related-but-different formulas,
// the memo recognizes BIT-IDENTICAL formulas and replays the finished
// result outright. The paper's Table 5 size-independence makes this the
// dominant effect for the serve batching lane: the rewritten correctness
// formula's CNF does not depend on the ROB size at a fixed issue width, so
// one solve serves a whole column of (N, k) requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"

namespace velev::sat {

class IncrementalSession {
 public:
  explicit IncrementalSession(Options opts = {}, InprocessOptions iopts = {})
      : solver_(opts), iopts_(iopts) {}

  /// Solve one formula in the shared session. `assumptions` are DIMACS
  /// literals in the CELL's variable space, as is the returned model.
  /// Unsat answers never poison the session (the cell's clauses are only
  /// active under its selector).
  Result solveCell(const prop::Cnf& cnf,
                   std::span<const prop::CnfLit> assumptions = {},
                   std::vector<bool>* model = nullptr, Stats* stats = nullptr,
                   InprocessStats* istats = nullptr,
                   std::int64_t conflictBudget = -1);

  /// Failed assumptions of the last Unsat call, mapped back to cell
  /// literals (the internal selector is filtered out).
  const prop::Clause& failedAssumptions() const { return failed_; }

  void setBudget(BudgetGovernor* governor) {
    budget_ = governor;
    solver_.setBudget(governor);
  }
  void setCancel(const std::atomic<bool>* flag) { solver_.setCancel(flag); }

  std::size_t calls() const { return calls_; }
  /// Learnt clauses currently retained by the shared solver.
  std::size_t retainedLearntCount() const { return solver_.numLearnts(); }
  /// Cumulative solver statistics across all calls.
  const Stats& cumulativeStats() const { return solver_.stats(); }

  /// Calls whose formula was recognized as identical to the previous call's
  /// (same clauses, same frozen assumption variables) and served through the
  /// still-active selector: no reload, no re-simplification, and the
  /// previous call's learnt clauses stay live. This is where incremental
  /// reuse pays — repeated solves of one formula under varying assumptions
  /// (fuzz shrink loops, bug sweeps, re-verification).
  std::size_t reusedCalls() const { return reusedCalls_; }

 private:
  void retireActiveSelector();

  Solver solver_;
  InprocessOptions iopts_;
  BudgetGovernor* budget_ = nullptr;
  prop::Clause failed_;
  std::size_t calls_ = 0;
  std::size_t reusedCalls_ = 0;

  // The last loaded call, kept for the identical-formula fast path. The
  // selector stays active (unretired) until a different formula arrives.
  prop::CnfLit activeSelector_ = 0;
  prop::Cnf lastCnf_;
  std::vector<std::uint32_t> lastFrozen_;
  SimplifyResult lastSimplified_;
};

/// Content-addressed memo of FINISHED solves: key = strong hash of the
/// exact CNF (variable count, clause list) plus the solve-relevant options
/// (inprocessing configuration, conflict budget). A hit replays the stored
/// Result and the per-call Stats/InprocessStats exactly as the original
/// fresh solve produced them — the solver is deterministic, so an
/// identical CNF under identical options would reproduce them bit for bit;
/// the memo just skips the work. This is what makes serve's batched
/// responses verdict- AND counter-identical to fresh single-request
/// verifies (a shared-selector session cannot promise that: its per-call
/// stats reflect carried learnts and activities).
///
/// Only conclusive results are stored (never Unknown — a budget or
/// conflict-budget trip is a property of the run, not of the formula).
/// Bounded FIFO capacity; single-threaded by design (one memo per worker
/// process / per batch executor), like IncrementalSession.
class SolveMemo {
 public:
  struct Entry {
    Result result = Result::Unknown;
    Stats stats;
    InprocessStats inprocessStats;
    bool inprocessed = false;
  };

  explicit SolveMemo(std::size_t maxEntries = 256)
      : maxEntries_(maxEntries == 0 ? 1 : maxEntries) {}

  /// Hash the exact formula + the options that could change the answer or
  /// the effort counters.
  static std::uint64_t key(const prop::Cnf& cnf, const InprocessOptions& iopts,
                           std::int64_t conflictBudget);

  /// nullptr on a miss; the pointer is invalidated by the next store().
  const Entry* find(std::uint64_t key) const;

  /// Remember one finished solve (Unknown results are refused).
  void store(std::uint64_t key, Entry entry);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }

 private:
  const std::size_t maxEntries_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::vector<std::uint64_t> order_;  // FIFO eviction ring
  mutable std::uint64_t hits_ = 0;
};

}  // namespace velev::sat
