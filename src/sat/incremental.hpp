// Incremental SAT session: one long-lived Solver shared by a sequence of
// closely-related formulas (grid cells of the same strategy), using the
// activation-selector encoding:
//
//   * each call i gets a fresh selector variable s_i,
//   * every clause C of call i is loaded as C ∨ ¬s_i,
//   * the call is solved under the assumption s_i (plus any caller
//     assumptions), so only "its" clauses are active,
//   * the selector stays ACTIVE until a different formula arrives: a call
//     whose clauses and frozen assumption variables are identical to the
//     previous call's is solved under the same selector with nothing
//     reloaded or re-simplified, so its learnt clauses (all guarded by
//     ¬s_i) stay live — repeated solves under varying assumptions are the
//     workload where incremental reuse pays,
//   * when a different formula does arrive, the old selector is retired
//     with the permanent unit ¬s_i and every satisfied clause (the retired
//     call's clauses and its selector-guarded learnts) is purged from the
//     watch lists, so later calls never pay propagation cost for dead
//     clauses.
//
// Variable mapping keeps distinct calls' variables IDENTIFIED, not disjoint:
// cell variable v maps to session variable 2v-1 (odd) and selector i to 2i
// (even). Cells of one strategy share their low-numbered variables (same
// netlist skeleton), so VSIDS activities, saved phases and retained learnt
// clauses carry useful information from one cell to the next — that is the
// point of the session. The mapping is collision-free by parity.
//
// Each call's CNF is first run through sat::inprocess() in its own variable
// space (assumption variables frozen), and a Sat model is reconstructed back
// onto the ORIGINAL cell variables before being returned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"

namespace velev::sat {

class IncrementalSession {
 public:
  explicit IncrementalSession(Options opts = {}, InprocessOptions iopts = {})
      : solver_(opts), iopts_(iopts) {}

  /// Solve one formula in the shared session. `assumptions` are DIMACS
  /// literals in the CELL's variable space, as is the returned model.
  /// Unsat answers never poison the session (the cell's clauses are only
  /// active under its selector).
  Result solveCell(const prop::Cnf& cnf,
                   std::span<const prop::CnfLit> assumptions = {},
                   std::vector<bool>* model = nullptr, Stats* stats = nullptr,
                   InprocessStats* istats = nullptr,
                   std::int64_t conflictBudget = -1);

  /// Failed assumptions of the last Unsat call, mapped back to cell
  /// literals (the internal selector is filtered out).
  const prop::Clause& failedAssumptions() const { return failed_; }

  void setBudget(BudgetGovernor* governor) {
    budget_ = governor;
    solver_.setBudget(governor);
  }
  void setCancel(const std::atomic<bool>* flag) { solver_.setCancel(flag); }

  std::size_t calls() const { return calls_; }
  /// Learnt clauses currently retained by the shared solver.
  std::size_t retainedLearntCount() const { return solver_.numLearnts(); }
  /// Cumulative solver statistics across all calls.
  const Stats& cumulativeStats() const { return solver_.stats(); }

  /// Calls whose formula was recognized as identical to the previous call's
  /// (same clauses, same frozen assumption variables) and served through the
  /// still-active selector: no reload, no re-simplification, and the
  /// previous call's learnt clauses stay live. This is where incremental
  /// reuse pays — repeated solves of one formula under varying assumptions
  /// (fuzz shrink loops, bug sweeps, re-verification).
  std::size_t reusedCalls() const { return reusedCalls_; }

 private:
  void retireActiveSelector();

  Solver solver_;
  InprocessOptions iopts_;
  BudgetGovernor* budget_ = nullptr;
  prop::Clause failed_;
  std::size_t calls_ = 0;
  std::size_t reusedCalls_ = 0;

  // The last loaded call, kept for the identical-formula fast path. The
  // selector stays active (unretired) until a different formula arrives.
  prop::CnfLit activeSelector_ = 0;
  prop::Cnf lastCnf_;
  std::vector<std::uint32_t> lastFrozen_;
  SimplifyResult lastSimplified_;
};

}  // namespace velev::sat
