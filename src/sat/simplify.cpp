#include "sat/simplify.hpp"

#include <algorithm>

#include "support/budget.hpp"
#include "support/check.hpp"
#include "support/trace.hpp"

namespace velev::sat {

namespace {

using prop::Clause;
using prop::CnfLit;

/// The in-flight clause database. Clauses are immutable once added: every
/// strengthening/substitution kills the old index and appends a new one, so
/// occurrence lists are exact up to a liveness check and the passes never
/// chase stale pointers.
class Simplifier {
 public:
  Simplifier(const prop::Cnf& in, const InprocessOptions& opts, Proof* proof,
             BudgetGovernor* budget, std::span<const std::uint32_t> frozen)
      : opts_(opts),
        proof_(proof),
        budget_(budget),
        n_(in.numVars),
        val_(in.numVars + 1, 0),
        frozen_(in.numVars + 1, 0),
        eliminated_(in.numVars + 1, 0),
        occ_(2 * static_cast<std::size_t>(in.numVars) + 2) {
    if (budget_ != nullptr) budgetSource_ = budget_->registerSource();
    for (std::uint32_t v : frozen) {
      VELEV_CHECK(v >= 1 && v <= n_);
      frozen_[v] = 1;
    }
    stats_.clausesBefore = in.clauses.size();
    load(in);
  }

  SimplifyResult run() {
    TRACE_SPAN("sat.inprocess");
    propagateUnits();
    for (unsigned round = 0; round < opts_.maxRounds && !done(); ++round) {
      ++stats_.rounds;
      const std::uint64_t before = mutations_;
      if (opts_.substitute && !done()) substitutePass();
      if (opts_.subsume && !done()) subsumePass();
      if (opts_.vivify && !done()) vivifyPass();
      if (opts_.probe && !done()) probePass();
      if (opts_.varElim && !done()) elimPass();
      if (mutations_ == before) break;  // fixpoint
    }
    return finish();
  }

 private:
  // ---- database primitives -------------------------------------------------

  static std::size_t litIdx(CnfLit l) {
    return 2 * (static_cast<std::size_t>(std::abs(l)) - 1) + (l < 0 ? 1 : 0);
  }

  std::int8_t valueOf(CnfLit l) const {
    const std::int8_t v = val_[static_cast<std::size_t>(std::abs(l))];
    return l > 0 ? v : static_cast<std::int8_t>(-v);
  }

  /// Append a normalized (sorted, unique, tautology-free, assignment-free)
  /// clause; queues units. Does NOT emit proof steps — callers do, because
  /// whether the addition needs one depends on where the clause came from.
  std::uint32_t pushClause(Clause c) {
    const auto ci = static_cast<std::uint32_t>(db_.size());
    bytes_ += (c.size() * 2 + 4) * sizeof(CnfLit);
    if (c.size() == 1) pendingUnits_.push_back(c[0]);
    if (c.empty()) provedUnsat_ = true;
    for (CnfLit l : c) occ_[litIdx(l)].push_back(ci);
    db_.push_back(std::move(c));
    live_.push_back(1);
    ++mutations_;
    return ci;
  }

  void killClause(std::uint32_t ci, bool emitDelete) {
    if (live_[ci] == 0) return;
    live_[ci] = 0;
    ++mutations_;
    // Unit clauses are never deleted from the proof: the simplified CNF
    // re-emits every level-0 unit, so the checker database must keep them.
    if (emitDelete && proof_ != nullptr && db_[ci].size() > 1)
      proof_->del(db_[ci]);
  }

  /// Sort + dedupe + drop assigned-false lits. Returns false for clauses
  /// that are tautologous or satisfied at level 0 (caller skips them).
  bool normalize(Clause& c) const {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    Clause out;
    out.reserve(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i + 1 < c.size() && c[i] == -c[i + 1]) return false;  // tautology
      const std::int8_t v = valueOf(c[i]);
      if (v > 0) return false;  // satisfied
      if (v < 0) continue;      // falsified literal: drop
      out.push_back(c[i]);
    }
    c = std::move(out);
    return true;
  }

  void load(const prop::Cnf& in) {
    for (const Clause& orig : in.clauses) {
      if (provedUnsat_) return;
      Clause c = orig;
      if (!normalize(c)) continue;  // tautology (no proof step needed)
      if (c.size() != orig.size()) {
        // Strengthened against the level-0 units (or deduped): RUP.
        if (proof_ != nullptr) proof_->add(c);
        if (c.empty() && proof_ == nullptr) {
          // pushClause flags provedUnsat; proof already has the {} above.
        }
      }
      pushClause(std::move(c));
      if (!pendingUnits_.empty()) propagateUnits();
    }
  }

  // ---- level-0 unit propagation --------------------------------------------

  void assign(CnfLit u) {
    const auto v = static_cast<std::size_t>(std::abs(u));
    const std::int8_t want = u > 0 ? 1 : -1;
    if (val_[v] == -want) {
      if (proof_ != nullptr) proof_->add({});
      provedUnsat_ = true;
      return;
    }
    if (val_[v] == want) return;
    val_[v] = want;
    ++stats_.unitsDerived;
    unitQueue_.push_back(u);
  }

  /// Saturate the level-0 assignment: kill satisfied clauses, strengthen
  /// clauses with falsified literals. Restores the invariant that every
  /// live clause has size >= 2 and mentions no assigned variable.
  void propagateUnits() {
    for (CnfLit u : pendingUnits_) assign(u);
    pendingUnits_.clear();
    while (!unitQueue_.empty() && !provedUnsat_) {
      const CnfLit u = unitQueue_.front();
      unitQueue_.erase(unitQueue_.begin());
      for (const std::uint32_t ci : occ_[litIdx(u)]) {
        if (live_[ci] == 0) continue;
        killClause(ci, /*emitDelete=*/true);
        ++stats_.clausesRemoved;
      }
      // Snapshot: strengthening appends to db_ and occurrence lists.
      const std::vector<std::uint32_t> negOcc = occ_[litIdx(-u)];
      for (const std::uint32_t ci : negOcc) {
        if (live_[ci] == 0) continue;
        Clause c = db_[ci];
        if (!normalize(c)) {  // satisfied by another level-0 unit
          killClause(ci, /*emitDelete=*/true);
          ++stats_.clausesRemoved;
          continue;
        }
        stats_.litsRemoved += db_[ci].size() - c.size();
        ++stats_.clausesStrengthened;
        if (proof_ != nullptr) proof_->add(c);
        if (c.empty()) provedUnsat_ = true;
        killClause(ci, /*emitDelete=*/true);
        pushClause(std::move(c));
        if (provedUnsat_) return;
        if (!pendingUnits_.empty()) {
          for (CnfLit l : pendingUnits_) assign(l);
          pendingUnits_.clear();
        }
      }
    }
    unitQueue_.clear();
  }

  // ---- budget / work accounting --------------------------------------------

  bool done() const { return provedUnsat_ || stopped_; }

  /// Count `w` units of logical work; poll the governor periodically. On a
  /// trip the pipeline stops at the next safe point, leaving a consistent
  /// partially simplified database (inprocessing is best-effort).
  bool tick(std::uint64_t w = 1) {
    ticks_ += w;
    if (budget_ != nullptr && ticks_ >= nextPoll_) {
      nextPoll_ = ticks_ + 0x8000;
      if (budget_->poll(budgetSource_, bytes_)) stopped_ = true;
    }
    return stopped_;
  }

  // ---- pass 2: SCC equivalent-literal substitution -------------------------

  void substitutePass() {
    TRACE_SPAN("sat.inprocess.substitute");
    // Implication graph over literal nodes: binary clause (a b) gives
    // ¬a → b and ¬b → a.
    const std::size_t nodes = 2 * static_cast<std::size_t>(n_);
    std::vector<std::vector<std::uint32_t>> adj(nodes);
    for (std::size_t ci = 0; ci < db_.size(); ++ci) {
      if (live_[ci] == 0 || db_[ci].size() != 2) continue;
      const CnfLit a = db_[ci][0], b = db_[ci][1];
      adj[litIdx(-a)].push_back(static_cast<std::uint32_t>(litIdx(b)));
      adj[litIdx(-b)].push_back(static_cast<std::uint32_t>(litIdx(a)));
      if (tick(2)) return;
    }

    // Iterative Tarjan SCC.
    std::vector<std::uint32_t> comp(nodes, 0xffffffffu), low(nodes, 0),
        num(nodes, 0xffffffffu);
    std::vector<std::uint32_t> sccStack;
    std::vector<char> onStack(nodes, 0);
    std::uint32_t counter = 0, compCount = 0;
    struct Frame {
      std::uint32_t node;
      std::size_t edge;
    };
    std::vector<Frame> dfs;
    for (std::uint32_t root = 0; root < nodes; ++root) {
      if (num[root] != 0xffffffffu) continue;
      dfs.push_back({root, 0});
      num[root] = low[root] = counter++;
      sccStack.push_back(root);
      onStack[root] = 1;
      while (!dfs.empty()) {
        Frame& f = dfs.back();
        if (f.edge < adj[f.node].size()) {
          const std::uint32_t next = adj[f.node][f.edge++];
          if (num[next] == 0xffffffffu) {
            num[next] = low[next] = counter++;
            sccStack.push_back(next);
            onStack[next] = 1;
            dfs.push_back({next, 0});
          } else if (onStack[next] != 0) {
            low[f.node] = std::min(low[f.node], num[next]);
          }
          if (tick()) return;
          continue;
        }
        if (low[f.node] == num[f.node]) {
          for (;;) {
            const std::uint32_t w = sccStack.back();
            sccStack.pop_back();
            onStack[w] = 0;
            comp[w] = compCount;
            if (w == f.node) break;
          }
          ++compCount;
        }
        const std::uint32_t child = f.node;
        dfs.pop_back();
        if (!dfs.empty())
          low[dfs.back().node] = std::min(low[dfs.back().node], low[child]);
      }
    }

    // Representative literal per SCC: frozen variables win (they must not
    // be substituted away), then lowest variable, positive before negative.
    const auto idxLit = [](std::uint32_t i) -> CnfLit {
      const auto v = static_cast<CnfLit>(i / 2 + 1);
      return (i & 1) != 0 ? -v : v;
    };
    std::vector<CnfLit> rep(compCount, 0);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const CnfLit l = idxLit(i);
      const auto v = static_cast<std::size_t>(std::abs(l));
      if (eliminated_[v] != 0 || val_[v] != 0) continue;
      CnfLit& r = rep[comp[i]];
      if (r == 0) {
        r = l;
        continue;
      }
      const bool lFrozen = frozen_[v] != 0;
      const bool rFrozen = frozen_[static_cast<std::size_t>(std::abs(r))] != 0;
      if (lFrozen != rFrozen) {
        if (lFrozen) r = l;
      } else if (std::abs(l) < std::abs(r)) {
        r = l;
      }
    }

    // x ≡ ¬x: the binary chains refute both polarities — UNSAT.
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (comp[litIdx(static_cast<CnfLit>(v))] ==
              comp[litIdx(-static_cast<CnfLit>(v))] &&
          val_[v] == 0 && eliminated_[v] == 0) {
        if (proof_ != nullptr) {
          proof_->add({-static_cast<CnfLit>(v)});
          proof_->add({static_cast<CnfLit>(v)});
          proof_->add({});
        }
        provedUnsat_ = true;
        return;
      }
    }

    // Substitution map per variable: v -> rep of the SCC of literal +v.
    std::vector<CnfLit> subst(n_ + 1, 0);
    bool any = false;
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (frozen_[v] != 0 || eliminated_[v] != 0 || val_[v] != 0) continue;
      const CnfLit r = rep[comp[litIdx(static_cast<CnfLit>(v))]];
      if (r == 0 || std::abs(r) == static_cast<CnfLit>(v)) continue;
      subst[v] = r;
      any = true;
    }
    if (!any) return;

    // Before any rewriting, materialize the DIRECT defining binaries
    // (¬v ∨ r) and (v ∨ ¬r) for every substituted pair. Each is RUP via
    // the (still fully intact) binary implication chains of the SCC. The
    // rewrites below are then RUP through these direct binaries no matter
    // in which order chain clauses get rewritten or killed — rewriting an
    // intra-SCC chain clause maps BOTH of its variables to the rep, which
    // yields a tautology and kills the clause, so a later variable's
    // chain support can otherwise disappear mid-pass. The sweep skips the
    // defining binaries (they would tautologize mid-sweep and take the
    // RUP support with them); they are deleted after all rewrites, so the
    // output CNF never contains them.
    const auto defLo = static_cast<std::uint32_t>(db_.size());
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (subst[v] == 0) continue;
      const CnfLit pv = static_cast<CnfLit>(v);
      const CnfLit r = subst[v];
      for (Clause c : {Clause{-pv, r}, Clause{pv, -r}}) {
        std::sort(c.begin(), c.end());
        if (proof_ != nullptr) proof_->add(c);
        pushClause(std::move(c));
      }
      if (tick(4)) return;
    }
    const auto defHi = static_cast<std::uint32_t>(db_.size());

    // Rewrite every clause that mentions a substituted variable.
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (subst[v] == 0) continue;
      for (const CnfLit l :
           {static_cast<CnfLit>(v), -static_cast<CnfLit>(v)}) {
        const std::vector<std::uint32_t> occs = occ_[litIdx(l)];
        for (const std::uint32_t ci : occs) {
          if (live_[ci] == 0 || (ci >= defLo && ci < defHi)) continue;
          Clause c;
          c.reserve(db_[ci].size());
          for (const CnfLit x : db_[ci]) {
            const auto xv = static_cast<std::size_t>(std::abs(x));
            const CnfLit r = subst[xv];
            c.push_back(r == 0 ? x : (x > 0 ? r : -r));
          }
          if (tick(c.size())) return;
          if (!normalize(c)) {
            // Substituted form is a tautology (e.g. the defining binary
            // clauses themselves): the original is redundant.
            killClause(ci, /*emitDelete=*/true);
            ++stats_.clausesRemoved;
            continue;
          }
          if (proof_ != nullptr) proof_->add(c);
          killClause(ci, /*emitDelete=*/true);
          pushClause(std::move(c));
        }
      }
      recon_.pushEquivalence(v, subst[v]);
      ++stats_.varsSubstituted;
      // The variable no longer occurs anywhere: exempt it from later
      // passes exactly like an eliminated one (reconstruction defines it).
      eliminated_[v] = 1;
    }
    // Retire the defining binaries now that no rewrite needs them.
    for (std::uint32_t ci = defLo; ci < defHi; ++ci)
      killClause(ci, /*emitDelete=*/true);
    propagateUnits();
  }

  // ---- pass 3: subsumption + self-subsumption ------------------------------

  void subsumePass() {
    TRACE_SPAN("sat.inprocess.subsume");
    std::vector<std::uint32_t> order;
    order.reserve(db_.size());
    for (std::uint32_t ci = 0; ci < db_.size(); ++ci)
      if (live_[ci] != 0) order.push_back(ci);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return db_[a].size() < db_[b].size();
                     });

    for (const std::uint32_t ci : order) {
      if (live_[ci] == 0) continue;  // subsumed by an earlier clause
      if (done()) return;
      const Clause c = db_[ci];
      // Backward subsumption through the least-occurring literal: any
      // superset of c must contain it.
      CnfLit pivot = c[0];
      for (const CnfLit l : c)
        if (occ_[litIdx(l)].size() < occ_[litIdx(pivot)].size()) pivot = l;
      const std::vector<std::uint32_t> cands = occ_[litIdx(pivot)];
      for (const std::uint32_t di : cands) {
        if (di == ci || live_[di] == 0 || db_[di].size() < c.size()) continue;
        if (tick(db_[di].size())) return;
        if (std::includes(db_[di].begin(), db_[di].end(), c.begin(),
                          c.end())) {
          killClause(di, /*emitDelete=*/true);
          ++stats_.clausesRemoved;
        }
      }
      // Self-subsumption: c with one literal flipped subsumes d => the
      // flipped literal can be resolved out of d (the resolvent c⊗d ⊆ d
      // is RUP from c and d).
      for (std::size_t k = 0; k < c.size(); ++k) {
        Clause flip = c;
        flip[k] = -flip[k];
        std::sort(flip.begin(), flip.end());
        const std::vector<std::uint32_t> strong = occ_[litIdx(-c[k])];
        for (const std::uint32_t di : strong) {
          if (di == ci || live_[di] == 0 || db_[di].size() < c.size())
            continue;
          if (tick(db_[di].size())) return;
          if (!std::includes(db_[di].begin(), db_[di].end(), flip.begin(),
                             flip.end()))
            continue;
          Clause d = db_[di];
          d.erase(std::find(d.begin(), d.end(), -c[k]));
          ++stats_.clausesStrengthened;
          ++stats_.litsRemoved;
          if (proof_ != nullptr) proof_->add(d);
          killClause(di, /*emitDelete=*/true);
          pushClause(std::move(d));
        }
      }
    }
    propagateUnits();
  }

  // ---- counter-based propagation engine (vivification, probing) ------------
  //
  // Works on the live database under the invariant that no live clause
  // mentions an assigned variable. Database mutations are DEFERRED while
  // the engine is in use (plans are applied after the pass), so the
  // per-clause counters stay exact.

  struct Engine {
    Simplifier& s;
    std::vector<std::int8_t> tval;        // temporary assignment
    std::vector<CnfLit> trail;
    std::vector<std::uint32_t> nFalse, nTrue;
    std::size_t qhead = 0;
    bool conflict = false;

    explicit Engine(Simplifier& owner)
        : s(owner),
          tval(owner.n_ + 1, 0),
          nFalse(owner.db_.size(), 0),
          nTrue(owner.db_.size(), 0) {}

    std::int8_t value(CnfLit l) const {
      const std::int8_t v = tval[static_cast<std::size_t>(std::abs(l))];
      return l > 0 ? v : static_cast<std::int8_t>(-v);
    }

    void enqueue(CnfLit l) {
      if (value(l) != 0) {
        if (value(l) < 0) conflict = true;
        return;
      }
      tval[static_cast<std::size_t>(std::abs(l))] =
          static_cast<std::int8_t>(l > 0 ? 1 : -1);
      trail.push_back(l);
    }

    /// Propagate to fixpoint, ignoring clause `ignore` (the clause being
    /// vivified must not shorten itself). Returns true on conflict.
    bool propagate(std::uint32_t ignore) {
      while (qhead < trail.size() && !conflict) {
        const CnfLit p = trail[qhead++];
        for (const std::uint32_t ci : s.occ_[litIdx(p)]) {
          if (s.live_[ci] == 0) continue;
          ++nTrue[ci];
        }
        for (const std::uint32_t ci : s.occ_[litIdx(-p)]) {
          if (s.live_[ci] == 0 || ci == ignore) continue;
          ++nFalse[ci];
          if (nTrue[ci] != 0) continue;
          const std::size_t size = s.db_[ci].size();
          if (nFalse[ci] == size) {
            conflict = true;
            break;
          }
          if (nFalse[ci] == size - 1) {
            for (const CnfLit l : s.db_[ci]) {
              if (value(l) == 0) {
                enqueue(l);
                break;
              }
            }
          }
        }
        s.ticks_ += s.occ_[litIdx(p)].size() + s.occ_[litIdx(-p)].size();
      }
      return conflict;
    }

    /// Undo everything past `mark` trail entries.
    void backtrack(std::size_t mark) {
      while (trail.size() > mark) {
        const CnfLit p = trail.back();
        trail.pop_back();
        tval[static_cast<std::size_t>(std::abs(p))] = 0;
        for (const std::uint32_t ci : s.occ_[litIdx(p)])
          if (s.live_[ci] != 0) --nTrue[ci];
        for (const std::uint32_t ci : s.occ_[litIdx(-p)])
          if (s.live_[ci] != 0 && nFalse[ci] > 0) --nFalse[ci];
        s.ticks_ += s.occ_[litIdx(p)].size() + s.occ_[litIdx(-p)].size();
      }
      qhead = trail.size();
      conflict = false;
    }
  };

  // ---- pass 4: vivification ------------------------------------------------

  void vivifyPass() {
    TRACE_SPAN("sat.inprocess.vivify");
    Engine eng(*this);
    struct Plan {
      std::uint32_t ci;
      Clause shortened;
    };
    std::vector<Plan> plans;
    const std::uint64_t limit = ticks_ + opts_.vivifyTickLimit;
    for (std::uint32_t ci = 0; ci < eng.nFalse.size(); ++ci) {
      if (live_[ci] == 0 || db_[ci].size() < 2) continue;
      if (ticks_ >= limit || tick()) break;
      const Clause& c = db_[ci];
      Clause kept;
      bool shortened = false;
      for (const CnfLit l : c) {
        const std::int8_t v = eng.value(l);
        if (v > 0) {
          // ¬(kept) propagated l: the clause kept ∪ {l} is RUP and the
          // remaining literals are redundant.
          kept.push_back(l);
          shortened = kept.size() < c.size();
          break;
        }
        if (v < 0) {
          shortened = true;  // ¬(kept) propagated ¬l: drop l
          continue;
        }
        eng.enqueue(-l);
        if (eng.propagate(ci)) {
          // Conflict: ¬(kept ∪ {l}) refutes by unit propagation.
          kept.push_back(l);
          shortened = kept.size() < c.size();
          break;
        }
        kept.push_back(l);
      }
      eng.backtrack(0);
      if (shortened && kept.size() < c.size())
        plans.push_back({ci, std::move(kept)});
    }
    for (Plan& p : plans) {
      if (done()) return;
      if (live_[p.ci] == 0) continue;
      stats_.litsRemoved += db_[p.ci].size() - p.shortened.size();
      ++stats_.clausesStrengthened;
      if (proof_ != nullptr) proof_->add(p.shortened);
      killClause(p.ci, /*emitDelete=*/true);
      pushClause(std::move(p.shortened));
    }
    propagateUnits();
  }

  // ---- pass 5: failed-literal probing --------------------------------------

  void probePass() {
    TRACE_SPAN("sat.inprocess.probe");
    // Probe only literals whose assertion propagates through some binary
    // clause — the others cannot fail by unit propagation.
    std::vector<char> isCand(2 * static_cast<std::size_t>(n_) + 2, 0);
    for (std::size_t ci = 0; ci < db_.size(); ++ci) {
      if (live_[ci] == 0 || db_[ci].size() != 2) continue;
      isCand[litIdx(-db_[ci][0])] = 1;
      isCand[litIdx(-db_[ci][1])] = 1;
    }
    Engine eng(*this);
    std::vector<CnfLit> failed;
    const std::uint64_t limit = ticks_ + opts_.probeTickLimit;
    for (std::uint32_t v = 1; v <= n_ && ticks_ < limit; ++v) {
      if (val_[v] != 0 || eliminated_[v] != 0) continue;
      for (const CnfLit l :
           {static_cast<CnfLit>(v), -static_cast<CnfLit>(v)}) {
        if (isCand[litIdx(l)] == 0) continue;
        if (tick()) break;
        eng.enqueue(l);
        if (eng.propagate(0xffffffffu)) failed.push_back(-l);
        eng.backtrack(0);
      }
      if (done()) break;
    }
    for (const CnfLit u : failed) {
      if (provedUnsat_) return;
      if (valueOf(u) > 0) continue;  // already derived transitively
      ++stats_.failedLiterals;
      if (proof_ != nullptr) proof_->add({u});
      assign(u);
      propagateUnits();
    }
  }

  // ---- pass 6: bounded variable elimination --------------------------------

  /// Gate detection for elimination-by-substitution. Shape (for l = +v or
  /// -v): one definition clause D = (l ∨ m1 ∨ ... ∨ mk) plus the binaries
  /// (¬l ∨ ¬mi) for every i — the Tseitin encoding of l ↔ ¬m1∧...∧¬mk,
  /// which the AIG translation mass-produces. When such a gate exists,
  /// resolving on v only needs gate-side × non-gate-side cross products:
  /// every omitted resolvent (non-gate × non-gate) is implied by the kept
  /// ones (Eén–Biere, SatELite), so equisatisfiability, the reconstruction
  /// witness (still ALL clauses of v), and the proof protocol (kept
  /// resolvents are ordinary RUP resolvents) are unchanged. Full NiVER
  /// counting would refuse most of these variables.
  struct Gate {
    std::uint32_t def = 0;            // the long definition clause
    std::vector<std::uint32_t> bins;  // the (¬l ∨ ¬mi) binaries
    bool defOnPos = false;            // l == +v (def sits in the pos list)
  };

  bool findGate(std::uint32_t v, const std::vector<std::uint32_t>& pos,
                const std::vector<std::uint32_t>& neg, Gate& out) {
    for (const bool onPos : {true, false}) {
      const CnfLit l = onPos ? static_cast<CnfLit>(v) : -static_cast<CnfLit>(v);
      const auto& defs = onPos ? pos : neg;
      const auto& binSide = onPos ? neg : pos;
      // Map "other literal" of every live binary (¬l ∨ o) to its clause.
      binByOther_.clear();
      for (const std::uint32_t ci : binSide) {
        if (db_[ci].size() != 2) continue;
        const CnfLit o = db_[ci][0] == -l ? db_[ci][1] : db_[ci][0];
        binByOther_.emplace_back(o, ci);
      }
      if (binByOther_.empty()) continue;
      for (const std::uint32_t ci : defs) {
        if (db_[ci].size() < 3) continue;  // binaries are SCC territory
        out.bins.clear();
        bool ok = true;
        for (const CnfLit m : db_[ci]) {
          if (m == l) continue;
          const auto it = std::find_if(
              binByOther_.begin(), binByOther_.end(),
              [m](const auto& e) { return e.first == -m; });
          if (it == binByOther_.end()) {
            ok = false;
            break;
          }
          out.bins.push_back(it->second);
        }
        if (ok) {
          out.def = ci;
          out.defOnPos = onPos;
          return true;
        }
      }
    }
    return false;
  }

  void elimPass() {
    TRACE_SPAN("sat.inprocess.elim");
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (done()) return;
      if (frozen_[v] != 0 || eliminated_[v] != 0 || val_[v] != 0) continue;
      std::vector<std::uint32_t> pos, neg;
      for (const std::uint32_t ci : occ_[litIdx(static_cast<CnfLit>(v))])
        if (live_[ci] != 0) pos.push_back(ci);
      for (const std::uint32_t ci : occ_[litIdx(-static_cast<CnfLit>(v))])
        if (live_[ci] != 0) neg.push_back(ci);
      if (pos.empty() && neg.empty()) continue;  // unconstrained already
      if (pos.size() > opts_.elimOccLimit || neg.size() > opts_.elimOccLimit)
        continue;

      // The (pos, neg) clause pairs to resolve: the full cross product, or
      // only the gate-side × non-gate-side pairs when v is gate-defined.
      Gate gate;
      pairs_.clear();
      if (opts_.elimBySubstitution && findGate(v, pos, neg, gate)) {
        const auto isGateClause = [&](std::uint32_t ci) {
          return ci == gate.def ||
                 std::find(gate.bins.begin(), gate.bins.end(), ci) !=
                     gate.bins.end();
        };
        for (const std::uint32_t pi : pos)
          for (const std::uint32_t ni : neg) {
            const bool pg = gate.defOnPos ? pi == gate.def : isGateClause(pi);
            const bool ng = gate.defOnPos ? isGateClause(ni) : ni == gate.def;
            if (pg != ng)  // exactly one side from the gate
              pairs_.emplace_back(pi, ni);
          }
      } else {
        for (const std::uint32_t pi : pos)
          for (const std::uint32_t ni : neg) pairs_.emplace_back(pi, ni);
      }

      // All non-tautological resolvents on v over the selected pairs.
      std::vector<Clause> resolvents;
      bool tooMany = false;
      for (const auto& [pi, ni] : pairs_) {
        if (tick(db_[pi].size() + db_[ni].size())) return;
        Clause r;
        r.reserve(db_[pi].size() + db_[ni].size());
        for (const CnfLit l : db_[pi])
          if (l != static_cast<CnfLit>(v)) r.push_back(l);
        for (const CnfLit l : db_[ni])
          if (l != -static_cast<CnfLit>(v)) r.push_back(l);
        if (!normalize(r)) continue;  // tautological resolvent
        resolvents.push_back(std::move(r));
        if (resolvents.size() > pos.size() + neg.size() + opts_.elimGrowth) {
          tooMany = true;
          break;
        }
      }
      if (tooMany) continue;

      // Commit: resolvents first (each RUP against the still-present
      // parents), then remove every clause of v; the removed clauses are
      // the reconstruction witness.
      if (proof_ != nullptr)
        for (const Clause& r : resolvents) proof_->add(r);
      std::vector<Clause> witness;
      witness.reserve(pos.size() + neg.size());
      for (const std::uint32_t ci : pos) witness.push_back(db_[ci]);
      for (const std::uint32_t ci : neg) witness.push_back(db_[ci]);
      recon_.pushElimination(v, std::move(witness));
      for (const std::uint32_t ci : pos) killClause(ci, /*emitDelete=*/true);
      for (const std::uint32_t ci : neg) killClause(ci, /*emitDelete=*/true);
      stats_.clausesRemoved += pos.size() + neg.size();
      for (Clause& r : resolvents) pushClause(std::move(r));
      eliminated_[v] = 1;
      ++stats_.varsEliminated;
      if (!pendingUnits_.empty()) propagateUnits();
    }
  }

  // ---- output --------------------------------------------------------------

  SimplifyResult finish() {
    SimplifyResult out;
    out.cnf.numVars = n_;
    if (provedUnsat_) {
      out.cnf.addClause({});
      out.provedUnsat = true;
    } else {
      for (std::uint32_t v = 1; v <= n_; ++v)
        if (val_[v] != 0)
          out.cnf.addClause({val_[v] > 0 ? static_cast<CnfLit>(v)
                                         : -static_cast<CnfLit>(v)});
      for (std::size_t ci = 0; ci < db_.size(); ++ci)
        if (live_[ci] != 0) out.cnf.clauses.push_back(db_[ci]);
    }
    stats_.clausesAfter = out.cnf.clauses.size();
    stats_.reconstructionDepth = recon_.depth();
    out.stats = stats_;
    out.recon = std::move(recon_);
    if (trace::Collector* c = trace::active()) {
      c->addCounter("sat.inprocess.rounds", stats_.rounds);
      c->addCounter("sat.inprocess.clauses_before", stats_.clausesBefore);
      c->addCounter("sat.inprocess.clauses_after", stats_.clausesAfter);
      c->addCounter("sat.inprocess.clauses_removed", stats_.clausesRemoved);
      c->addCounter("sat.inprocess.clauses_strengthened",
                    stats_.clausesStrengthened);
      c->addCounter("sat.inprocess.lits_removed", stats_.litsRemoved);
      c->addCounter("sat.inprocess.vars_eliminated", stats_.varsEliminated);
      c->addCounter("sat.inprocess.vars_substituted",
                    stats_.varsSubstituted);
      c->addCounter("sat.inprocess.failed_literals", stats_.failedLiterals);
      c->maxCounter("sat.inprocess.reconstruction_depth",
                    stats_.reconstructionDepth);
    }
    return out;
  }

  const InprocessOptions opts_;
  Proof* proof_;
  BudgetGovernor* budget_;
  int budgetSource_ = -1;

  std::uint32_t n_;
  std::vector<Clause> db_;
  std::vector<char> live_;
  std::vector<std::int8_t> val_;
  std::vector<char> frozen_;
  std::vector<char> eliminated_;
  std::vector<std::vector<std::uint32_t>> occ_;

  std::vector<CnfLit> pendingUnits_;
  std::vector<CnfLit> unitQueue_;

  // Scratch for elimPass/findGate (cleared per use; members to keep the
  // allocations).
  std::vector<std::pair<CnfLit, std::uint32_t>> binByOther_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;

  Reconstructor recon_;
  InprocessStats stats_;
  std::uint64_t mutations_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t nextPoll_ = 0x8000;
  std::size_t bytes_ = 0;
  bool provedUnsat_ = false;
  bool stopped_ = false;
};

}  // namespace

void Reconstructor::pushEquivalence(std::uint32_t var, CnfLit rep) {
  VELEV_CHECK(rep != 0 &&
              static_cast<std::uint32_t>(std::abs(rep)) != var);
  steps_.push_back({var, rep, {}});
}

void Reconstructor::pushElimination(std::uint32_t var,
                                    std::vector<Clause> clauses) {
  steps_.push_back({var, 0, std::move(clauses)});
}

void Reconstructor::extend(std::vector<bool>& model) const {
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    if (it->rep != 0) {
      const auto rv = static_cast<std::size_t>(std::abs(it->rep));
      VELEV_CHECK(rv < model.size() && it->var < model.size());
      model[it->var] = it->rep > 0 ? model[rv] : !model[rv];
      continue;
    }
    // Elimination witness: false satisfies every clause unless some clause
    // is left unsatisfied, in which case true does (all resolvents hold
    // under the model, so the polarity flip fixes every positive clause
    // without breaking a negative one).
    model[it->var] = false;
    for (const Clause& c : it->clauses) {
      bool sat = false;
      for (const CnfLit l : c) {
        const auto v = static_cast<std::size_t>(std::abs(l));
        VELEV_CHECK(v < model.size());
        if ((l > 0) == model[v]) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        model[it->var] = true;
        break;
      }
    }
  }
}

SimplifyResult inprocess(const prop::Cnf& in, const InprocessOptions& opts,
                         Proof* proof, BudgetGovernor* budget,
                         std::span<const std::uint32_t> frozen) {
  if (!opts.enabled) {
    // Exact pass-through (not even clause normalization), so --no-inprocess
    // reproduces the historical pipeline bit for bit.
    SimplifyResult out;
    out.cnf = in;
    out.stats.clausesBefore = out.stats.clausesAfter = in.clauses.size();
    return out;
  }
  Simplifier s(in, opts, proof, budget, frozen);
  return s.run();
}

Result solveCnfInprocessed(const prop::Cnf& cnf, const InprocessOptions& iopts,
                           std::vector<bool>* model, Stats* stats,
                           std::int64_t conflictBudget, Proof* proof,
                           BudgetGovernor* budget, InprocessStats* istats,
                           std::span<const std::uint32_t> frozen) {
  if (!iopts.enabled)
    return solveCnf(cnf, model, stats, conflictBudget, proof, budget);
  SimplifyResult sr = inprocess(cnf, iopts, proof, budget, frozen);
  if (istats != nullptr) *istats = sr.stats;
  // Even a provedUnsat simplification goes through solveCnf (the simplified
  // CNF contains the empty clause, so the call returns immediately): the
  // sat.solve span and the Stats are filled on every path.
  const Result r =
      solveCnf(sr.cnf, model, stats, conflictBudget, proof, budget);
  if (sr.provedUnsat) return Result::Unsat;
  if (r == Result::Sat && model != nullptr) sr.recon.extend(*model);
  return r;
}

}  // namespace velev::sat
