#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "support/budget.hpp"
#include "support/trace.hpp"

namespace velev::sat {

namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::int64_t luby(std::int64_t x) {
  // Find the finite subsequence containing index x and its size.
  std::int64_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return 1LL << seq;
}

}  // namespace

Solver::Solver(Options opts) : opts_(opts), rng_(opts.seed) {
  conflictsUntilReduce_ = opts_.reduceBase;
}

void Solver::ensureVars(std::uint32_t numVars) {
  while (nVars_ < numVars) {
    const Var v = static_cast<Var>(nVars_++);
    assigns_.push_back(LBool::Undef);
    // Default phase: negative (UNSAT-friendly); portfolio instances may
    // diversify the starting phases instead.
    polarity_.push_back(opts_.randomInitPhase ? (rng_.coin() ? 1 : 0) : 1);
    level_.push_back(0);
    reason_.push_back(kCRefUndef);
    frozen_.push_back(0);
    activity_.push_back(0.0);
    heapPos_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
  }
}

Solver::CRef Solver::allocClause(std::span<const Lit> lits, bool learnt,
                                 std::uint32_t lbd) {
  const CRef c = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 1) |
                   (learnt ? 1u : 0u));
  arena_.push_back(lbd);
  arena_.insert(arena_.end(), lits.begin(), lits.end());
  (learnt ? learntRefs_ : problemRefs_).push_back(c);
  return c;
}

void Solver::attachClause(CRef c) {
  const Lit* ls = clauseLits(c);
  VELEV_CHECK(clauseSize(c) >= 2);
  watches_[negLit(ls[0])].push_back(Watcher{c, ls[1]});
  watches_[negLit(ls[1])].push_back(Watcher{c, ls[0]});
}

void Solver::detachClause(CRef c) {
  const Lit* ls = clauseLits(c);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[negLit(ls[i])];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].cref == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

prop::Clause Solver::toDimacs(std::span<const Lit> lits) const {
  prop::Clause c;
  c.reserve(lits.size());
  for (Lit l : lits) {
    const prop::CnfLit v = static_cast<prop::CnfLit>(varOf(l)) + 1;
    c.push_back(signOf(l) ? -v : v);
  }
  return c;
}

bool Solver::addClause(std::span<const prop::CnfLit> dimacs) {
  if (!okay_) return false;
  // Incremental use: a previous solve() may have left a partial (or full)
  // assignment behind; clauses are always added at level 0.
  backtrack(0);
  // Normalize: sort, drop duplicates and false literals, detect tautology.
  std::vector<Lit> lits;
  lits.reserve(dimacs.size());
  for (prop::CnfLit dl : dimacs) lits.push_back(fromDimacs(dl));
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  bool dropped = false;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == negLit(lits[i]))
      return true;  // tautology: x ∨ ¬x (adjacent after sort)
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    const LBool v = valueLit(lits[i]);
    if (v == LBool::True) return true;   // already satisfied at level 0
    if (v == LBool::False) {
      dropped = true;  // falsified at level 0: drop (RUP from the units)
      continue;
    }
    out.push_back(lits[i]);
  }
  // The stored clause differs from the input: record the strengthened
  // clause in the proof (it is RUP with respect to the level-0 units).
  if (proof_ && dropped) proof_->add(toDimacs(out));
  if (out.empty()) {
    // Also reached when the input itself contained the empty clause; make
    // sure the proof still ends with an (RUP-checkable) empty clause.
    if (proof_ && !dropped) proof_->add({});
    okay_ = false;
    return false;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], kCRefUndef)) {
      if (proof_) proof_->add({});
      okay_ = false;
      return false;
    }
    if (propagate() != kCRefUndef) {
      if (proof_) proof_->add({});
      okay_ = false;
      return false;
    }
    return true;
  }
  attachClause(allocClause(out, /*learnt=*/false, /*lbd=*/0));
  return true;
}

bool Solver::enqueue(Lit l, CRef reason) {
  const LBool v = valueLit(l);
  if (v != LBool::Undef) return v == LBool::True;
  const Var x = varOf(l);
  assigns_[x] = signOf(l) ? LBool::False : LBool::True;
  level_[x] = decisionLevel();
  reason_[x] = reason;
  trail_.push_back(l);
  return true;
}

Solver::CRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i];
      if (valueLit(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      const CRef c = w.cref;
      Lit* ls = clauseLits(c);
      const std::uint32_t size = clauseSize(c);
      // Make ls[1] the false watched literal (= ¬p).
      const Lit notP = negLit(p);
      if (ls[0] == notP) std::swap(ls[0], ls[1]);
      // ls[1] == notP now.
      if (valueLit(ls[0]) == LBool::True) {
        ws[j++] = Watcher{c, ls[0]};
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (valueLit(ls[k]) != LBool::False) {
          std::swap(ls[1], ls[k]);
          watches_[negLit(ls[1])].push_back(Watcher{c, ls[0]});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // watcher removed from this list
        continue;
      }
      // Unit or conflicting.
      if (valueLit(ls[0]) == LBool::False) {
        // Conflict: restore remaining watchers and return.
        while (i < n) ws[j++] = ws[i++];
        ws.resize(j);
        return c;
      }
      ws[j++] = Watcher{c, ls[0]};
      ++i;
      enqueue(ls[0], c);
    }
    ws.resize(j);
  }
  return kCRefUndef;
}

void Solver::bumpVar(Var v) {
  activity_[v] += varInc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapContains(v)) heapDecrease(v);
}

void Solver::analyze(CRef conflict, std::vector<Lit>& outLearnt,
                     std::uint32_t& outBtLevel, std::uint32_t& outLbd) {
  outLearnt.clear();
  outLearnt.push_back(kLitUndef);  // slot for the asserting (UIP) literal
  int counter = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  CRef reasonRef = conflict;

  // Walk the implication graph backwards to the first UIP.
  do {
    VELEV_CHECK(reasonRef != kCRefUndef);
    const Lit* ls = clauseLits(reasonRef);
    const std::uint32_t size = clauseSize(reasonRef);
    for (std::uint32_t k = (p == kLitUndef ? 0 : 1); k < size; ++k) {
      const Lit q = ls[k];
      const Var v = varOf(q);
      if (seen_[v] || levelOf(v) == 0) continue;
      seen_[v] = 1;
      analyzeToClear_.push_back(q);
      bumpVar(v);
      if (levelOf(v) >= decisionLevel()) {
        ++counter;
      } else {
        outLearnt.push_back(q);
      }
    }
    // Select the next trail literal at the current decision level.
    while (!seen_[varOf(trail_[index - 1])]) --index;
    p = trail_[--index];
    seen_[varOf(p)] = 0;
    reasonRef = reason_[varOf(p)];
    --counter;
  } while (counter > 0);
  outLearnt[0] = negLit(p);

  // Conflict-clause minimization: drop literals implied by the rest.
  std::uint32_t abstractLevels = 0;
  for (std::size_t k = 1; k < outLearnt.size(); ++k)
    abstractLevels |= 1u << (levelOf(varOf(outLearnt[k])) & 31);
  std::size_t keep = 1;
  for (std::size_t k = 1; k < outLearnt.size(); ++k) {
    const Lit q = outLearnt[k];
    if (reason_[varOf(q)] == kCRefUndef || !litRedundant(q, abstractLevels))
      outLearnt[keep++] = q;
    else
      ++stats_.minimizedLits;
  }
  outLearnt.resize(keep);

  // Find the backtrack level (second-highest level in the clause).
  outBtLevel = 0;
  if (outLearnt.size() > 1) {
    std::size_t maxIdx = 1;
    for (std::size_t k = 2; k < outLearnt.size(); ++k)
      if (levelOf(varOf(outLearnt[k])) > levelOf(varOf(outLearnt[maxIdx])))
        maxIdx = k;
    std::swap(outLearnt[1], outLearnt[maxIdx]);
    outBtLevel = levelOf(varOf(outLearnt[1]));
  }

  // LBD: number of distinct decision levels in the learnt clause.
  std::vector<std::uint32_t> levels;
  levels.reserve(outLearnt.size());
  for (Lit q : outLearnt) levels.push_back(levelOf(varOf(q)));
  std::sort(levels.begin(), levels.end());
  outLbd = static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());

  for (Lit q : analyzeToClear_) seen_[varOf(q)] = 0;
  analyzeToClear_.clear();
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  // DFS over the reason graph: `l` is redundant if every path terminates in
  // literals already in the learnt clause (seen) or at level 0.
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  const std::size_t clearTop = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit q = analyzeStack_.back();
    analyzeStack_.pop_back();
    const CRef r = reason_[varOf(q)];
    VELEV_CHECK(r != kCRefUndef);
    const Lit* ls = clauseLits(r);
    const std::uint32_t size = clauseSize(r);
    for (std::uint32_t k = 1; k < size; ++k) {
      const Lit x = ls[k];
      const Var v = varOf(x);
      if (seen_[v] || levelOf(v) == 0) continue;
      if (reason_[v] == kCRefUndef ||
          ((1u << (levelOf(v) & 31)) & abstractLevels) == 0) {
        // Cannot be shown redundant: undo marks made during this probe.
        while (analyzeToClear_.size() > clearTop) {
          seen_[varOf(analyzeToClear_.back())] = 0;
          analyzeToClear_.pop_back();
        }
        return false;
      }
      seen_[v] = 1;
      analyzeToClear_.push_back(x);
      analyzeStack_.push_back(x);
    }
  }
  return true;
}

void Solver::backtrack(std::uint32_t btLevel) {
  if (decisionLevel() <= btLevel) return;
  const std::uint32_t bound = trailLim_[btLevel];
  for (std::size_t k = trail_.size(); k > bound; --k) {
    const Var v = varOf(trail_[k - 1]);
    polarity_[v] = static_cast<std::int8_t>(assigns_[v] == LBool::False);
    assigns_[v] = LBool::Undef;
    reason_[v] = kCRefUndef;
    if (!heapContains(v)) heapInsert(v);
  }
  trail_.resize(bound);
  trailLim_.resize(btLevel);
  qhead_ = trail_.size();
}

Solver::Lit Solver::pickBranchLit() {
  // Portfolio diversification: occasionally branch on a random unassigned
  // variable instead of the VSIDS choice (the variable stays in the heap;
  // later pops skip it once assigned).
  if (opts_.randomDecisionFreq > 0 && nVars_ > 0 &&
      rng_.unit() < opts_.randomDecisionFreq) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Var v = static_cast<Var>(rng_.below(nVars_));
      if (assigns_[v] == LBool::Undef) return mkLit(v, polarity_[v] != 0);
    }
  }
  while (!heap_.empty()) {
    const Var v = heapPop();
    if (assigns_[v] == LBool::Undef)
      return mkLit(v, polarity_[v] != 0);
  }
  return kLitUndef;
}

void Solver::reduceDb() {
  // Keep the glue clauses (LBD <= 2); of the rest, remove the worse half.
  std::sort(learntRefs_.begin(), learntRefs_.end(), [&](CRef a, CRef b) {
    return clauseLbd(a) < clauseLbd(b);
  });
  std::size_t keep = learntRefs_.size() / 2;
  while (keep < learntRefs_.size() &&
         clauseLbd(learntRefs_[keep]) <= 2)
    ++keep;
  std::vector<CRef> kept(learntRefs_.begin(), learntRefs_.begin() + keep);
  for (std::size_t k = keep; k < learntRefs_.size(); ++k) {
    const CRef c = learntRefs_[k];
    // A clause that is the reason for a current assignment is locked. The
    // implied literal is always one of the two watched positions, but
    // propagation may have swapped it to position 1.
    bool locked = false;
    for (int w = 0; w < 2; ++w) {
      const Lit l = clauseLits(c)[w];
      if (valueLit(l) == LBool::True && reason_[varOf(l)] == c) {
        locked = true;
        break;
      }
    }
    if (locked) {
      kept.push_back(c);
    } else {
      if (proof_)
        proof_->del(toDimacs({clauseLits(c), clauseSize(c)}));
      detachClause(c);
      ++stats_.removedClauses;
    }
  }
  learntRefs_ = std::move(kept);
}

void Solver::purgeSatisfiedAtLevelZero() {
  if (!okay_) return;
  backtrack(0);
  // Some removed clauses may be the reasons of level-0 assignments.
  // Conflict analysis never dereferences a level-0 reason (analyze and
  // litRedundant both skip level-0 literals), but clear them anyway so no
  // dangling reference survives.
  for (const Lit l : trail_) reason_[varOf(l)] = kCRefUndef;
  const auto satisfied = [&](CRef c) {
    const Lit* ls = clauseLits(c);
    const std::uint32_t n = clauseSize(c);
    for (std::uint32_t i = 0; i < n; ++i)
      if (valueLit(ls[i]) == LBool::True) return true;
    return false;
  };
  const auto sweep = [&](std::vector<CRef>& refs) {
    std::vector<CRef> kept;
    kept.reserve(refs.size());
    for (const CRef c : refs) {
      if (satisfied(c)) {
        if (proof_)
          proof_->del(toDimacs({clauseLits(c), clauseSize(c)}));
        detachClause(c);
        ++stats_.removedClauses;
      } else {
        kept.push_back(c);
      }
    }
    refs = std::move(kept);
  };
  sweep(problemRefs_);
  sweep(learntRefs_);
}

void Solver::setBudget(BudgetGovernor* governor) {
  budget_ = governor;
  budgetSource_ = governor != nullptr ? governor->registerSource() : -1;
}

bool Solver::pollBudget() noexcept {
  return budget_ != nullptr && budget_->poll(budgetSource_, memoryBytes());
}

Result Solver::solve(std::int64_t conflictBudget) {
  return solve(std::span<const prop::CnfLit>(), conflictBudget);
}

Result Solver::solve(std::span<const prop::CnfLit> assumptions,
                     std::int64_t conflictBudget) {
  if (!okay_) return Result::Unsat;
  backtrack(0);  // start of an incremental call: drop the previous model
  failed_.clear();
  assumptions_.clear();
  assumptions_.reserve(assumptions.size());
  for (prop::CnfLit dl : assumptions) assumptions_.push_back(fromDimacs(dl));
  std::int64_t restartNum = 0;
  std::int64_t conflictsLeftInRestart = luby(restartNum) * opts_.lubyUnit;
  std::vector<Lit> learnt;

  for (;;) {
    if (cancelled() || pollBudget()) return Result::Unknown;
    const CRef conflict = propagate();
    if (conflict != kCRefUndef) {
      ++stats_.conflicts;
      if (decisionLevel() == 0) {
        // A level-0 conflict refutes the clause database itself, not the
        // assumptions: the solver is permanently Unsat.
        if (proof_) proof_->add({});
        okay_ = false;
        return Result::Unsat;
      }
      std::uint32_t btLevel, lbd;
      analyze(conflict, learnt, btLevel, lbd);
      if (proof_) proof_->add(toDimacs(learnt));
      backtrack(btLevel);
      if (learnt.size() == 1) {
        const bool ok = enqueue(learnt[0], kCRefUndef);
        VELEV_CHECK(ok);
      } else {
        const CRef c = allocClause(learnt, /*learnt=*/true, lbd);
        attachClause(c);
        const bool ok = enqueue(learnt[0], c);
        VELEV_CHECK(ok);
      }
      ++stats_.learnts;
      decayVarActivity();
      --conflictsLeftInRestart;
      if (conflictBudget >= 0 && --conflictBudget <= 0)
        return Result::Unknown;
      if (--conflictsUntilReduce_ <= 0) {
        reduceDb();
        conflictsUntilReduce_ =
            opts_.reduceBase + (++reduceCount_) * opts_.reduceIncrement;
      }
      continue;
    }
    if (conflictsLeftInRestart <= 0 &&
        decisionLevel() > assumptions_.size()) {
      ++stats_.restarts;
      backtrack(0);  // the loop below re-establishes the assumptions
      ++restartNum;
      conflictsLeftInRestart = luby(restartNum) * opts_.lubyUnit;
      continue;
    }
    // Establish the next pending assumption (one pseudo-decision level per
    // assumption, dummy level if it is already implied), then fall back to
    // the VSIDS decision heuristic.
    Lit next = kLitUndef;
    while (decisionLevel() < assumptions_.size()) {
      const Lit p = assumptions_[decisionLevel()];
      const LBool v = valueLit(p);
      if (v == LBool::True) {
        trailLim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      } else if (v == LBool::False) {
        // The database (plus earlier assumptions) refutes this assumption.
        analyzeFinal(negLit(p));
        if (proof_) proof_->add(failed_);
        return Result::Unsat;  // okay_ stays true: only assumptions failed
      } else {
        next = p;
        break;
      }
    }
    if (next == kLitUndef) {
      next = pickBranchLit();
      if (next == kLitUndef) return Result::Sat;  // complete assignment
    }
    ++stats_.decisions;
    trailLim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    const bool ok = enqueue(next, kCRefUndef);
    VELEV_CHECK(ok);
  }
}

void Solver::analyzeFinal(Lit p) {
  // `p` is true on the trail and its negation is the assumption that just
  // failed: collect the subset of assumptions whose conjunction the clause
  // database refutes, as a clause of negated assumption literals. The
  // clause is derived by resolving the reasons along the trail, so it is
  // RUP with respect to the database plus the assumption units.
  const auto dimacsLit = [this](Lit l) {
    const prop::CnfLit v = static_cast<prop::CnfLit>(varOf(l)) + 1;
    return signOf(l) ? -v : v;
  };
  failed_.clear();
  failed_.push_back(dimacsLit(p));
  if (decisionLevel() == 0) return;
  seen_[varOf(p)] = 1;
  for (std::size_t i = trail_.size(); i > trailLim_[0]; --i) {
    const Var x = varOf(trail_[i - 1]);
    if (!seen_[x]) continue;
    if (reason_[x] == kCRefUndef) {
      VELEV_CHECK(levelOf(x) > 0);
      failed_.push_back(dimacsLit(negLit(trail_[i - 1])));
    } else {
      const Lit* ls = clauseLits(reason_[x]);
      const std::uint32_t size = clauseSize(reason_[x]);
      for (std::uint32_t k = 1; k < size; ++k)
        if (levelOf(varOf(ls[k])) > 0) seen_[varOf(ls[k])] = 1;
    }
    seen_[x] = 0;
  }
  seen_[varOf(p)] = 0;
}

bool Solver::modelValue(std::uint32_t dimacsVar) const {
  VELEV_CHECK(dimacsVar >= 1 && dimacsVar <= nVars_);
  return assigns_[dimacsVar - 1] == LBool::True;
}

void Solver::freeze(std::uint32_t dimacsVar) {
  VELEV_CHECK(dimacsVar >= 1 && dimacsVar <= nVars_);
  frozen_[dimacsVar - 1] = 1;
}

bool Solver::isFrozen(std::uint32_t dimacsVar) const {
  VELEV_CHECK(dimacsVar >= 1 && dimacsVar <= nVars_);
  return frozen_[dimacsVar - 1] != 0;
}

std::vector<std::uint32_t> Solver::frozenVars() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < nVars_; ++v)
    if (frozen_[v] != 0) out.push_back(v + 1);
  return out;
}

std::vector<prop::Clause> Solver::retainedLearnts(std::uint32_t maxLbd) const {
  std::vector<prop::Clause> out;
  for (const CRef c : learntRefs_) {
    if (arena_[c + 1] > maxLbd) continue;
    out.push_back(toDimacs({clauseLits(c), clauseSize(c)}));
  }
  return out;
}

// ---- indexed binary min-heap on -activity (max-activity at root) -----------

void Solver::heapInsert(Var v) {
  heapPos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heapDecrease(v);
}

void Solver::heapDecrease(Var v) {
  std::size_t i = static_cast<std::size_t>(heapPos_[v]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heapPos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heapPos_[v] = static_cast<std::int32_t>(i);
}

Solver::Var Solver::heapPop() {
  VELEV_CHECK(!heap_.empty());
  const Var top = heap_[0];
  heapPos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the moved element down.
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= heap_.size()) break;
      if (child + 1 < heap_.size() &&
          activity_[heap_[child + 1]] > activity_[heap_[child]])
        ++child;
      if (activity_[heap_[child]] <= activity_[last]) break;
      heap_[i] = heap_[child];
      heapPos_[heap_[i]] = static_cast<std::int32_t>(i);
      i = child;
    }
    heap_[i] = last;
    heapPos_[last] = static_cast<std::int32_t>(i);
  }
  return top;
}

Result solveCnf(const prop::Cnf& cnf, std::vector<bool>* model, Stats* stats,
                std::int64_t conflictBudget, Proof* proof,
                BudgetGovernor* budget) {
  Solver s;
  s.setProof(proof);
  s.setBudget(budget);
  bool ok = true;
  {
    TRACE_SPAN("sat.load");
    s.ensureVars(cnf.numVars);
    std::size_t loaded = 0;
    for (const auto& c : cnf.clauses) {
      // Loading the clause database copies the whole CNF into the arena;
      // poll so an over-budget instance stops before doubling its footprint.
      if ((++loaded & 0xfffu) == 0 && s.pollBudget()) {
        if (stats) *stats = s.stats();
        return Result::Unknown;
      }
      if (!s.addClause(c)) {
        ok = false;
        break;
      }
    }
  }
  Result r;
  {
    TRACE_SPAN("sat.solve");
    r = ok ? s.solve(conflictBudget) : Result::Unsat;
  }
  if (r == Result::Sat && model) {
    model->assign(cnf.numVars + 1, false);
    for (std::uint32_t v = 1; v <= cnf.numVars; ++v)
      (*model)[v] = s.modelValue(v);
  }
  if (stats) *stats = s.stats();
  return r;
}

}  // namespace velev::sat
