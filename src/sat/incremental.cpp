#include "sat/incremental.hpp"

#include <algorithm>
#include <array>

#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/trace.hpp"

namespace velev::sat {

namespace {

// Cell variable v -> session variable 2v-1 (odd); selector for (1-based)
// call i -> session variable 2i (even).
prop::CnfLit mapLit(prop::CnfLit l) {
  const prop::CnfLit v = 2 * (l > 0 ? l : -l) - 1;
  return l > 0 ? v : -v;
}

bool sameCnf(const prop::Cnf& a, const prop::Cnf& b) {
  return a.numVars == b.numVars && a.clauses == b.clauses;
}

}  // namespace

void IncrementalSession::retireActiveSelector() {
  if (activeSelector_ == 0) return;
  // The permanent unit makes the retired call's clauses (and its selector-
  // guarded learnts) satisfied forever; purging takes them out of the watch
  // lists so later calls stop paying propagation cost for dead clauses.
  solver_.addClause(std::array<prop::CnfLit, 1>{-activeSelector_});
  solver_.purgeSatisfiedAtLevelZero();
  activeSelector_ = 0;
}

Result IncrementalSession::solveCell(const prop::Cnf& cnf,
                                     std::span<const prop::CnfLit> assumptions,
                                     std::vector<bool>* model, Stats* stats,
                                     InprocessStats* istats,
                                     std::int64_t conflictBudget) {
  TRACE_SPAN("sat.incremental.cell");
  ++calls_;
  failed_.clear();
  const Stats before = solver_.stats();

  std::vector<std::uint32_t> frozen;
  frozen.reserve(assumptions.size());
  for (const prop::CnfLit a : assumptions)
    frozen.push_back(static_cast<std::uint32_t>(a > 0 ? a : -a));
  std::sort(frozen.begin(), frozen.end());
  frozen.erase(std::unique(frozen.begin(), frozen.end()), frozen.end());

  // Identical-formula fast path: same clauses and same frozen assumption
  // variables as the still-active previous call — solve under the SAME
  // selector, so nothing is reloaded or re-simplified and the previous
  // call's learnt clauses (all guarded by this selector) stay live. The
  // frozen sets must match because the stored simplification is only
  // equisatisfiable under assumptions over variables it was told to freeze.
  const bool reuse = activeSelector_ != 0 && frozen == lastFrozen_ &&
                     sameCnf(cnf, lastCnf_);
  prop::CnfLit selector = activeSelector_;
  if (reuse) {
    ++reusedCalls_;
  } else {
    retireActiveSelector();
    selector = static_cast<prop::CnfLit>(2 * calls_);

    // Simplify in the cell's own variable space; assumption variables are
    // frozen so the simplified CNF is equisatisfiable under every
    // assumption assignment (see simplify.hpp's soundness contract).
    lastSimplified_ = inprocess(cnf, iopts_, /*proof=*/nullptr, budget_,
                                frozen);
    lastCnf_ = cnf;
    lastFrozen_ = frozen;
    if (lastSimplified_.provedUnsat) {
      if (istats != nullptr) *istats = lastSimplified_.stats;
      if (stats != nullptr) *stats = Stats{};
      return Result::Unsat;
    }

    const std::uint32_t needed = std::max<std::uint32_t>(
        2 * cnf.numVars, static_cast<std::uint32_t>(2 * calls_));
    solver_.ensureVars(needed);  // total, not a delta — grows monotonically
    for (const std::uint32_t v : frozen) solver_.freeze(2 * v - 1);

    // Load the simplified clauses under this call's activation selector.
    std::vector<prop::CnfLit> buf;
    for (const prop::Clause& c : lastSimplified_.cnf.clauses) {
      buf.clear();
      buf.reserve(c.size() + 1);
      for (const prop::CnfLit l : c) buf.push_back(mapLit(l));
      buf.push_back(-selector);
      if (!solver_.addClause(buf)) {
        // Only a genuine level-0 conflict of the SHARED database lands
        // here, and the selector guard makes that impossible for cell
        // clauses.
        VELEV_CHECK(!solver_.okay());
        return Result::Unsat;
      }
    }
    activeSelector_ = selector;
  }
  if (istats != nullptr) *istats = lastSimplified_.stats;
  if (stats != nullptr) *stats = Stats{};

  std::vector<prop::CnfLit> assume;
  assume.reserve(assumptions.size() + 1);
  assume.push_back(selector);
  for (const prop::CnfLit a : assumptions) assume.push_back(mapLit(a));
  const Result r = solver_.solve(assume, conflictBudget);

  if (r == Result::Sat && model != nullptr) {
    model->assign(cnf.numVars + 1, false);
    for (std::uint32_t v = 1; v <= cnf.numVars; ++v)
      (*model)[v] = solver_.modelValue(2 * v - 1);
    lastSimplified_.recon.extend(*model);
  }
  if (r == Result::Unsat) {
    // Map the failed-assumption clause back to cell literals; the selector
    // itself is session-internal noise to the caller.
    for (const prop::CnfLit l : solver_.failedAssumptions()) {
      const prop::CnfLit a = l > 0 ? l : -l;
      if (a % 2 == 0) continue;  // a selector literal
      const prop::CnfLit cellVar = (a + 1) / 2;
      failed_.push_back(l > 0 ? cellVar : -cellVar);
    }
  }

  if (stats != nullptr) {
    const Stats& after = solver_.stats();
    stats->decisions = after.decisions - before.decisions;
    stats->propagations = after.propagations - before.propagations;
    stats->conflicts = after.conflicts - before.conflicts;
    stats->learnts = after.learnts - before.learnts;
    stats->restarts = after.restarts - before.restarts;
    stats->removedClauses = after.removedClauses - before.removedClauses;
    stats->minimizedLits = after.minimizedLits - before.minimizedLits;
  }
  if (trace::Collector* c = trace::active()) {
    c->addCounter("sat.incremental.cells", 1);
    c->setCounter("sat.incremental.retained_learnts",
                  solver_.numLearnts());
  }
  return r;
}

std::uint64_t SolveMemo::key(const prop::Cnf& cnf,
                             const InprocessOptions& iopts,
                             std::int64_t conflictBudget) {
  std::uint64_t h = hashValues(
      {0x536f6c76654d656dULL,  // domain tag: "SolveMem"
       cnf.numVars, cnf.clauses.size(),
       static_cast<std::uint64_t>(conflictBudget),
       static_cast<std::uint64_t>(iopts.enabled),
       static_cast<std::uint64_t>(iopts.substitute),
       static_cast<std::uint64_t>(iopts.subsume),
       static_cast<std::uint64_t>(iopts.vivify),
       static_cast<std::uint64_t>(iopts.probe),
       static_cast<std::uint64_t>(iopts.varElim),
       static_cast<std::uint64_t>(iopts.maxRounds),
       static_cast<std::uint64_t>(iopts.elimOccLimit),
       static_cast<std::uint64_t>(iopts.elimGrowth),
       static_cast<std::uint64_t>(iopts.elimBySubstitution),
       iopts.vivifyTickLimit, iopts.probeTickLimit});
  for (const prop::Clause& c : cnf.clauses) {
    h = hashCombine(h, c.size());
    for (const prop::CnfLit l : c)
      h = hashCombine(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(l)));
  }
  return h;
}

const SolveMemo::Entry* SolveMemo::find(std::uint64_t key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++hits_;
  return &it->second;
}

void SolveMemo::store(std::uint64_t key, Entry entry) {
  if (entry.result == Result::Unknown) return;
  if (entries_.count(key) != 0) return;
  if (entries_.size() >= maxEntries_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.erase(order_.begin());
  }
  entries_.emplace(key, std::move(entry));
  order_.push_back(key);
}

}  // namespace velev::sat
