// SAT seed portfolio: race K diversified CDCL instances on one CNF.
//
// The Burch–Dill correctness CNFs (especially on the PE-only path, where
// the SAT back end dominates — Tables 2/3) respond strongly to the solver's
// tie-breaking: different VSIDS seeds, initial phases and restart schedules
// explore very different parts of the search space. The portfolio runs K
// solver instances concurrently on the same formula, takes the first
// decisive verdict, and cancels the losers cooperatively (they poll an
// atomic between propagation rounds).
//
// Guarantees:
//   * the verdict is seed-independent — SAT/UNSAT is a semantic property of
//     the CNF, so whichever instance wins, the answer is the same (the test
//     suite checks this property over seeds × instance counts);
//   * instance 0 always runs the caller's base options verbatim, so a
//     1-instance portfolio is bit-for-bit the sequential solver;
//   * when a proof is requested, every instance logs its own DRAT trace and
//     the winner's is returned — it certifies UNSAT through checkRup()
//     exactly like a sequential proof.
#pragma once

#include <cstdint>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"

namespace velev::sat {

struct PortfolioOptions {
  unsigned instances = 2;        // K racing solvers (clamped to >= 1)
  std::uint64_t baseSeed = 0x9e3779b97f4a7c15ULL;
  std::int64_t conflictBudget = -1;  // per instance; <0 unlimited
  Options base;                  // instance 0 runs exactly these options
  bool wantProof = false;        // log DRAT everywhere, return the winner's
  /// Optional shared resource governor: every instance registers its own
  /// byte-accounting slot (the memory trip condition sees the *sum* over
  /// the race) and polls it between propagation rounds; exhaustion stops
  /// the whole race with Result::Unknown. Must outlive the call.
  BudgetGovernor* budget = nullptr;
};

struct PortfolioReport {
  Result result = Result::Unknown;
  int winner = -1;               // instance index, -1 if all inconclusive
  std::uint64_t winnerSeed = 0;
  Stats winnerStats;             // stats of the winning instance
  std::vector<Stats> instanceStats;  // per-instance, index = instance id
  std::vector<std::uint64_t> instanceSeeds;  // VSIDS seed of each instance
  std::vector<bool> model;       // DIMACS-indexed (entry 0 unused) when Sat
  Proof proof;                   // winner's DRAT proof (wantProof && Unsat)
  double seconds = 0;            // wall time of the whole race
};

/// Solver options of portfolio instance `i` (exposed for the determinism
/// property tests): i == 0 is `opts.base` unchanged; i > 0 perturbs seed,
/// initial phases, random-decision frequency and the restart unit.
Options portfolioInstanceOptions(const PortfolioOptions& opts, unsigned i);

/// Race the portfolio on `cnf`. Returns Unknown only if every instance
/// exhausted its conflict budget.
Result solvePortfolio(const prop::Cnf& cnf, const PortfolioOptions& opts,
                      PortfolioReport* report = nullptr);

}  // namespace velev::sat
