// SAT seed portfolio: race K diversified CDCL instances on one CNF.
//
// The Burch–Dill correctness CNFs (especially on the PE-only path, where
// the SAT back end dominates — Tables 2/3) respond strongly to the solver's
// tie-breaking: different VSIDS seeds, initial phases and restart schedules
// explore very different parts of the search space. The portfolio runs K
// solver instances concurrently on the same formula, takes the first
// decisive verdict, and cancels the losers cooperatively (they poll an
// atomic between propagation rounds).
//
// Guarantees:
//   * the verdict is seed-independent — SAT/UNSAT is a semantic property of
//     the CNF, so whichever instance wins, the answer is the same (the test
//     suite checks this property over seeds × instance counts);
//   * instance 0 always runs the caller's base options verbatim, so a
//     1-instance portfolio is bit-for-bit the sequential solver;
//   * when a proof is requested, every instance logs its own DRAT trace and
//     the winner's is returned — it certifies UNSAT through checkRup()
//     exactly like a sequential proof.
#pragma once

#include <cstdint>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"

namespace velev::sat {

struct PortfolioOptions {
  unsigned instances = 2;        // K racing solvers (clamped to >= 1)
  std::uint64_t baseSeed = 0x9e3779b97f4a7c15ULL;
  std::int64_t conflictBudget = -1;  // per instance; <0 unlimited
  Options base;                  // instance 0 runs exactly these options
  bool wantProof = false;        // log DRAT everywhere, return the winner's
  /// Optional shared resource governor: every instance registers its own
  /// byte-accounting slot (the memory trip condition sees the *sum* over
  /// the race) and polls it between propagation rounds; exhaustion stops
  /// the whole race with Result::Unknown. Must outlive the call.
  BudgetGovernor* budget = nullptr;
  /// Assumption literals (DIMACS, in `cnf`'s variable space): the race
  /// decides "cnf ∧ assumptions". On an assumption-caused Unsat the
  /// winner's failed-assumption clause lands in the report; with wantProof
  /// the proof certifies via checkRupUnderAssumptions().
  std::vector<prop::CnfLit> assumptions;
  /// Inprocessing front end, run ONCE before the race; all K instances
  /// share the simplified CNF (and the race shares one reconstruction
  /// stack). Disabled by default so a 1-instance portfolio stays
  /// bit-for-bit the plain sequential solver.
  InprocessOptions inprocess = [] {
    InprocessOptions o;
    o.enabled = false;
    return o;
  }();
  /// Warm-start clauses: a retained-learnt snapshot exported by a previous
  /// race on the SAME formula (Solver::retainedLearnts() semantics — every
  /// clause must be implied by `cnf`). Loaded into every instance before
  /// its problem clauses. Incompatible with wantProof: learnt clauses are
  /// not single-step RUP against the bare formula.
  std::vector<prop::Clause> warmStart;
  /// Export the winner's retained learnt clauses into the report (for the
  /// next race's warmStart).
  bool exportLearnts = false;
};

struct PortfolioReport {
  Result result = Result::Unknown;
  int winner = -1;               // instance index, -1 if all inconclusive
  std::uint64_t winnerSeed = 0;
  Stats winnerStats;             // stats of the winning instance
  std::vector<Stats> instanceStats;  // per-instance, index = instance id
  std::vector<std::uint64_t> instanceSeeds;  // VSIDS seed of each instance
  std::vector<bool> model;       // DIMACS-indexed (entry 0 unused) when Sat
  Proof proof;                   // winner's DRAT proof (wantProof && Unsat)
  double seconds = 0;            // wall time of the whole race
  prop::Clause failedAssumptions;    // winner's, after an assumption Unsat
  InprocessStats inprocessStats;     // of the shared front-end run
  std::vector<prop::Clause> retainedLearnts;  // winner's (exportLearnts)
};

/// Solver options of portfolio instance `i` (exposed for the determinism
/// property tests): i == 0 is `opts.base` unchanged; i > 0 perturbs seed,
/// initial phases, random-decision frequency and the restart unit.
Options portfolioInstanceOptions(const PortfolioOptions& opts, unsigned i);

/// Race the portfolio on `cnf`. Returns Unknown only if every instance
/// exhausted its conflict budget.
Result solvePortfolio(const prop::Cnf& cnf, const PortfolioOptions& opts,
                      PortfolioReport* report = nullptr);

}  // namespace velev::sat
