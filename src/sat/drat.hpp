// DRAT proof emission and checking.
//
// The verification flow's final answer is "the CNF is unsatisfiable" — a
// claim worth certifying independently. The solver can log a clausal proof
// (every learnt clause as an addition, database reductions as deletions,
// ending with the empty clause); `checkRup` replays the proof against the
// original formula with an independent unit-propagation engine, verifying
// each added clause by the reverse-unit-propagation (RUP) criterion. CDCL
// learnt clauses are always RUP, so the RAT case of full DRAT is not
// needed.
//
// The checker is deliberately simple (counter-based propagation, no watch
// lists): it is the trusted base, used by the test suite to certify the
// UNSAT results of the processor-verification pipeline on small
// configurations, and exposed through `sat_dimacs --proof`.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "prop/cnf.hpp"

namespace velev::sat {

struct ProofStep {
  bool isDelete = false;
  prop::Clause clause;  // empty clause = the final UNSAT derivation
};

struct Proof {
  std::vector<ProofStep> steps;

  void add(prop::Clause c) { steps.push_back({false, std::move(c)}); }
  void del(prop::Clause c) { steps.push_back({true, std::move(c)}); }
  std::size_t size() const { return steps.size(); }
  bool endsWithEmptyClause() const {
    return !steps.empty() && !steps.back().isDelete &&
           steps.back().clause.empty();
  }
};

/// Verify `proof` against `cnf`: every addition must be RUP with respect to
/// the current clause database, and the proof must derive the empty clause.
/// Returns true iff the proof certifies unsatisfiability of `cnf`.
bool checkRup(const prop::Cnf& cnf, const Proof& proof);

/// Verify a proof of assumption-conditional unsatisfiability: the claim
/// "cnf ∧ assumptions is UNSAT", as produced by an incremental
/// Solver::solve(assumptions) call (whose final proof step is the failed-
/// assumption clause, not the empty clause). Checks the proof against
/// `cnf` extended with the assumption units; an empty clause is appended
/// when the proof does not already end with one, since under the
/// assumptions the failed-assumption clause propagates to a conflict.
bool checkRupUnderAssumptions(const prop::Cnf& cnf,
                              std::span<const prop::CnfLit> assumptions,
                              const Proof& proof);

/// Write the proof in the standard DRAT text format (for external
/// checkers).
void writeDrat(const Proof& proof, std::ostream& os);

}  // namespace velev::sat
