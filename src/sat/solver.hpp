// CDCL SAT solver — the stand-in for Chaff [Moskewicz et al., DAC'01] in the
// paper's tool flow. Implements the same algorithm family:
//   * two-watched-literal propagation,
//   * VSIDS-style decision heuristic (exponentially decayed activities),
//   * first-UIP conflict-driven clause learning with self-subsumption
//     minimization,
//   * non-chronological backjumping,
//   * Luby-sequence restarts with phase saving,
//   * learnt-clause database reduction keyed on LBD ("glue").
//
// The verification pipeline proves a design correct by showing the negated
// Boolean correctness formula UNSAT; a SAT answer comes with a model that
// maps back to the abstract processor's control signals (a counterexample).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "support/rng.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::sat {

enum class Result { Sat, Unsat, Unknown };

struct Options {
  double varDecay = 0.95;
  double clauseActivityDecay = 0.999;
  int lubyUnit = 512;          // conflicts per restart-unit
  int reduceBase = 2000;       // conflicts before first DB reduction
  int reduceIncrement = 300;   // growth of the reduction interval

  // Diversification knobs for the seed portfolio (sat/portfolio.hpp). The
  // defaults leave the solver bit-for-bit deterministic, as before.
  std::uint64_t seed = 0;          // seeds the tie-breaking RNG
  double randomDecisionFreq = 0;   // P(decision picks a random unassigned var)
  bool randomInitPhase = false;    // randomize the initial saved phases
};

struct Stats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learnts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t removedClauses = 0;
  std::uint64_t minimizedLits = 0;
};

class Solver {
 public:
  explicit Solver(Options opts = {});

  /// Add `n` fresh variables (DIMACS indices continue densely).
  void ensureVars(std::uint32_t numVars);
  std::uint32_t numVars() const { return static_cast<std::uint32_t>(nVars_); }

  /// Add a clause of DIMACS literals (±1-based). Returns false if the
  /// formula is already unsatisfiable at level 0. May be called between
  /// solve() calls: any leftover assignment from the previous call is
  /// undone first (the clause database, variable activities and saved
  /// phases are retained — that is the point of the incremental interface).
  bool addClause(std::span<const prop::CnfLit> lits);

  /// Solve; `conflictBudget < 0` means no limit.
  Result solve(std::int64_t conflictBudget = -1);

  /// Incremental solve under `assumptions` (DIMACS literals), MiniSat
  /// style: the assumptions are enqueued as pseudo-decisions before any
  /// real decision, so every learnt clause is implied by the clause
  /// database alone and retention across calls with different assumptions
  /// is sound. An Unsat answer caused by the assumptions does NOT poison
  /// the solver (okay() stays true); failedAssumptions() then holds a
  /// clause over negated assumptions that the database refutes — with a
  /// proof attached, that clause is also emitted as the final proof step,
  /// checkable via checkRupUnderAssumptions().
  Result solve(std::span<const prop::CnfLit> assumptions,
               std::int64_t conflictBudget);

  /// After an assumption-caused Unsat: the refuted subset, as a clause of
  /// negated assumption literals (DIMACS). Empty after a genuine Unsat.
  const prop::Clause& failedAssumptions() const { return failed_; }

  /// False once the clause database itself (no assumptions) is refuted at
  /// level 0; every later solve() returns Unsat immediately.
  bool okay() const { return okay_; }

  /// After Result::Sat: value of a DIMACS variable (1-based).
  bool modelValue(std::uint32_t dimacsVar) const;

  /// Frozen-variable bookkeeping for the inprocessing passes: a frozen
  /// variable has external meaning (assumption literal, activation
  /// selector, a variable the caller will read from the model of a later
  /// call) and must never be eliminated or substituted away. The solver
  /// itself only records the set; sat::inprocess() consumes it.
  void freeze(std::uint32_t dimacsVar);
  bool isFrozen(std::uint32_t dimacsVar) const;
  std::vector<std::uint32_t> frozenVars() const;

  /// Snapshot of the retained learnt clauses with LBD <= maxLbd, in DIMACS
  /// form. Every returned clause is implied by the problem clauses added so
  /// far (CDCL learnt clauses are consequences of the database), so the
  /// snapshot can warm-start another solver on the same formula.
  std::vector<prop::Clause> retainedLearnts(std::uint32_t maxLbd = 6) const;
  std::size_t numLearnts() const { return learntRefs_.size(); }
  std::size_t numProblemClauses() const { return problemRefs_.size(); }

  /// Remove every clause satisfied by the level-0 assignment from the
  /// database and the watch lists — how an incremental session reclaims a
  /// retired call's clauses (the permanent ¬s_i unit satisfies them). The
  /// arena is not compacted; what matters is that propagation stops
  /// visiting the dead clauses. Emits proof deletions for the removals.
  void purgeSatisfiedAtLevelZero();

  /// Attach a DRAT proof log (must outlive the solver; set before adding
  /// clauses). On an Unsat result the proof ends with the empty clause and
  /// can be certified with checkRup().
  void setProof(Proof* proof) { proof_ = proof; }

  /// Cooperative cancellation: solve() polls `flag` once per propagation
  /// round and returns Result::Unknown when it becomes true. The atomic
  /// must outlive the solve call; pass nullptr to detach. This is how the
  /// seed portfolio stops the losing solvers after the first verdict.
  void setCancel(const std::atomic<bool>* flag) { cancel_ = flag; }
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// Cooperative resource governance, alongside the cancellation hook:
  /// solve() polls the governor once per propagation round (reporting the
  /// clause arena's logical bytes) and returns Result::Unknown when a
  /// budget is exhausted. A solver never throws mid-propagation — the
  /// caller disambiguates Unknown via BudgetGovernor::exceeded(). The
  /// governor may be shared by all instances of a portfolio.
  void setBudget(BudgetGovernor* governor);
  BudgetGovernor* budgetGovernor() const { return budget_; }

  /// One governance poll: reports this solver's logical bytes, returns
  /// true once any budget is exceeded. Used by solve() and by solveCnf()
  /// while the clause database is being loaded.
  bool pollBudget() noexcept;

  /// Logical bytes owned by this solver (clause arena + per-variable
  /// bookkeeping + watcher lists). O(1) approximation.
  std::size_t memoryBytes() const {
    return arena_.capacity() * sizeof(std::uint32_t) +
           (learntRefs_.capacity() + problemRefs_.capacity()) * sizeof(CRef) +
           nVars_ * (sizeof(LBool) + sizeof(std::int8_t) +
                     sizeof(std::uint32_t) + sizeof(CRef) + sizeof(double) +
                     2 * sizeof(std::vector<Watcher>));
  }

  const Stats& stats() const { return stats_; }

 private:
  // Literal encoding: lit = var << 1 | sign (sign 1 = negated), var 0-based.
  using Lit = std::uint32_t;
  using Var = std::uint32_t;
  using CRef = std::uint32_t;
  static constexpr Lit kLitUndef = 0xffffffffu;
  static constexpr CRef kCRefUndef = 0xffffffffu;

  static Lit mkLit(Var v, bool neg) { return (v << 1) | (neg ? 1u : 0u); }
  static Lit negLit(Lit l) { return l ^ 1u; }
  static Var varOf(Lit l) { return l >> 1; }
  static bool signOf(Lit l) { return (l & 1u) != 0; }
  Lit fromDimacs(prop::CnfLit l) const {
    VELEV_CHECK(l != 0);
    const Var v = static_cast<Var>((l > 0 ? l : -l) - 1);
    VELEV_CHECK(v < nVars_);
    return mkLit(v, l < 0);
  }

  enum class LBool : std::int8_t { Undef = 0, True = 1, False = -1 };
  LBool valueLit(Lit l) const {
    const LBool v = assigns_[varOf(l)];
    if (v == LBool::Undef) return LBool::Undef;
    return (v == LBool::True) != signOf(l) ? LBool::True : LBool::False;
  }

  // ---- clause arena --------------------------------------------------------
  // Layout per clause: [size<<1 | learnt][lbd][lit0 lit1 ...]
  std::uint32_t clauseSize(CRef c) const { return arena_[c] >> 1; }
  bool clauseLearnt(CRef c) const { return (arena_[c] & 1u) != 0; }
  std::uint32_t& clauseLbd(CRef c) { return arena_[c + 1]; }
  Lit* clauseLits(CRef c) { return &arena_[c + 2]; }
  const Lit* clauseLits(CRef c) const { return &arena_[c + 2]; }
  CRef allocClause(std::span<const Lit> lits, bool learnt, std::uint32_t lbd);

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // ---- core CDCL -----------------------------------------------------------
  void attachClause(CRef c);
  void detachClause(CRef c);
  bool enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef conflict, std::vector<Lit>& outLearnt,
               std::uint32_t& outBtLevel, std::uint32_t& outLbd);
  void analyzeFinal(Lit p);  // fills failed_; p is on the trail (true)
  bool litRedundant(Lit l, std::uint32_t abstractLevels);
  void backtrack(std::uint32_t level);
  Lit pickBranchLit();
  void reduceDb();
  std::uint32_t decisionLevel() const {
    return static_cast<std::uint32_t>(trailLim_.size());
  }
  std::uint32_t levelOf(Var v) const { return level_[v]; }

  // ---- VSIDS heap ----------------------------------------------------------
  void bumpVar(Var v);
  void decayVarActivity() { varInc_ /= opts_.varDecay; }
  void heapInsert(Var v);
  Var heapPop();
  void heapDecrease(Var v);  // activity increased -> move up
  bool heapContains(Var v) const { return heapPos_[v] != -1; }

  Options opts_;
  Stats stats_;

  std::size_t nVars_ = 0;
  std::vector<std::uint32_t> arena_;
  std::vector<CRef> learntRefs_;
  std::vector<CRef> problemRefs_;

  std::vector<LBool> assigns_;
  std::vector<std::int8_t> polarity_;  // phase saving (1 = last was negative)
  std::vector<std::uint32_t> level_;
  std::vector<CRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trailLim_;
  std::size_t qhead_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by literal

  std::vector<double> activity_;
  double varInc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::int32_t> heapPos_;

  std::vector<char> seen_;  // scratch for analyze()
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;

  std::vector<Lit> assumptions_;  // of the solve() call in flight
  prop::Clause failed_;           // last failed-assumption clause (DIMACS)
  std::vector<char> frozen_;      // per-variable freeze marks

  bool okay_ = true;
  std::int64_t conflictsUntilReduce_ = 0;
  int reduceCount_ = 0;

  Rng rng_;
  const std::atomic<bool>* cancel_ = nullptr;
  BudgetGovernor* budget_ = nullptr;
  int budgetSource_ = -1;
  Proof* proof_ = nullptr;
  prop::Clause toDimacs(std::span<const Lit> lits) const;
};

/// Convenience wrapper: solve a CNF; fills `model` (indexed by DIMACS var,
/// entry 0 unused) when satisfiable; logs a DRAT proof when `proof` is
/// given. With a `budget`, both the clause-loading phase and the solve
/// loop are governed; exhaustion yields Result::Unknown (never a throw).
Result solveCnf(const prop::Cnf& cnf, std::vector<bool>* model = nullptr,
                Stats* stats = nullptr, std::int64_t conflictBudget = -1,
                Proof* proof = nullptr, BudgetGovernor* budget = nullptr);

}  // namespace velev::sat
