#include "sat/drat.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"

namespace velev::sat {

namespace {

/// A deliberately simple unit-propagation engine over a clause database
/// (counter-based; rebuilt per proof step would be too slow, so clauses are
/// scanned directly — proofs checked in the tests are small).
class RupChecker {
 public:
  explicit RupChecker(unsigned numVars) : numVars_(numVars) {}

  /// Clauses are stored normalized (sorted, duplicate literals removed):
  /// a duplicate-literal clause like (x x x) would otherwise inflate the
  /// unassigned count in isRup and never propagate as the unit it is.
  void addClause(const prop::Clause& c) { db_.push_back(normalized(c)); }

  void deleteClause(const prop::Clause& c) {
    prop::Clause key = normalized(c);
    for (std::size_t i = 0; i < db_.size(); ++i) {
      if (db_[i] == key) {
        db_[i] = db_.back();
        db_.pop_back();
        return;
      }
    }
    // Deleting a clause that is not present is harmless (the solver may
    // normalize clauses before storing them).
  }

  /// RUP check: assuming the negation of every literal of `c`, does unit
  /// propagation over the database derive a conflict?
  bool isRup(const prop::Clause& c) const {
    // assignment: 0 unset, +1 true, -1 false (indexed by variable).
    std::vector<std::int8_t> val(numVars_ + 1, 0);
    auto assign = [&](prop::CnfLit l) {  // returns false on conflict
      const unsigned v = static_cast<unsigned>(std::abs(l));
      const std::int8_t want = l > 0 ? 1 : -1;
      if (val[v] == -want) return false;
      val[v] = want;
      return true;
    };
    for (prop::CnfLit l : c)
      if (!assign(-l)) return true;  // ¬c is itself contradictory
    // Saturate unit propagation.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const prop::Clause& cl : db_) {
        prop::CnfLit unit = 0;
        bool satisfied = false;
        unsigned unassigned = 0;
        for (prop::CnfLit l : cl) {
          const unsigned v = static_cast<unsigned>(std::abs(l));
          const std::int8_t s = l > 0 ? 1 : -1;
          if (val[v] == s) {
            satisfied = true;
            break;
          }
          if (val[v] == 0) {
            ++unassigned;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return true;  // conflict derived
        if (unassigned == 1) {
          if (!assign(unit)) return true;
          changed = true;
        }
      }
    }
    return false;
  }

 private:
  static prop::Clause normalized(const prop::Clause& c) {
    prop::Clause r = c;
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    return r;
  }

  unsigned numVars_;
  std::vector<prop::Clause> db_;
};

}  // namespace

bool checkRup(const prop::Cnf& cnf, const Proof& proof) {
  if (!proof.endsWithEmptyClause()) return false;
  RupChecker checker(cnf.numVars);
  for (const auto& c : cnf.clauses) checker.addClause(c);
  for (const ProofStep& step : proof.steps) {
    if (step.isDelete) {
      checker.deleteClause(step.clause);
      continue;
    }
    if (!checker.isRup(step.clause)) return false;
    checker.addClause(step.clause);
  }
  return true;
}

bool checkRupUnderAssumptions(const prop::Cnf& cnf,
                              std::span<const prop::CnfLit> assumptions,
                              const Proof& proof) {
  prop::Cnf extended = cnf;
  for (const prop::CnfLit a : assumptions) extended.addClause({a});
  Proof closed = proof;
  // An assumption-caused Unsat ends the proof with the failed-assumption
  // clause (over negated assumptions): with the assumption units present it
  // propagates straight to a conflict, so the empty clause is RUP here.
  if (!closed.endsWithEmptyClause()) closed.add({});
  return checkRup(extended, closed);
}

void writeDrat(const Proof& proof, std::ostream& os) {
  for (const ProofStep& step : proof.steps) {
    if (step.isDelete) os << "d ";
    for (prop::CnfLit l : step.clause) os << l << ' ';
    os << "0\n";
  }
}

}  // namespace velev::sat
