// Table 3 — statistics of the CNF formulas for correctness of models with 8
// ROB entries when only Positive Equality is used: e_ij / other primary
// variables, CNF variables and clauses, and the SAT-checking time.
//
// As in the paper, the e_ij variables encode equality comparisons of
// register identifiers; "other primary" covers the Boolean variables of the
// correctness formula (initial Valid/ValidResult bits, the non-deterministic
// execute/fetch controls, and the Valid bits of newly fetched
// instructions). SAT checking at this size exhausts any practical budget —
// that is Table 2's phenomenon — so the SAT row reports a bounded attempt.
#include <cstdio>

#include "bench_util.hpp"
#include "core/diagram.hpp"
#include "evc/translate.hpp"
#include "models/spec.hpp"
#include "sat/solver.hpp"
#include "support/timer.hpp"

using namespace velev;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned n = 8;
  std::vector<unsigned> widths = {1, 2, 4, 8};
  const char* budgetEnv = std::getenv("REPRO_SAT_BUDGET");
  const std::int64_t budget = budgetEnv ? std::atoll(budgetEnv) : 300000;

  struct Col {
    evc::TranslationStats stats;
    double translateSeconds;
    std::string satTime;
  };
  std::vector<Col> cols;
  for (unsigned k : widths) {
    eufm::Context cx;
    const models::Isa isa = models::Isa::declare(cx);
    auto impl = models::buildOoO(cx, isa, {n, k});
    auto spec = models::buildSpec(cx, isa);
    const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
    Timer t;
    const evc::Translation tr = evc::translate(cx, d.correctness, {});
    Col col;
    col.translateSeconds = t.seconds();
    col.stats = tr.stats;
    t.reset();
    const sat::Result r = sat::solveCnf(tr.cnf, nullptr, nullptr, budget);
    char buf[32];
    if (r == sat::Result::Unsat)
      std::snprintf(buf, sizeof buf, "%.1f", t.seconds());
    else if (r == sat::Result::Unknown)
      std::snprintf(buf, sizeof buf, ">%.0f", t.seconds());
    else
      std::snprintf(buf, sizeof buf, "SAT?!");
    col.satTime = buf;
    cols.push_back(col);
  }

  std::printf(
      "Table 3: CNF statistics, ROB size 8, Positive Equality ONLY\n"
      "(columns: issue/retire width)\n");
  std::printf("%-24s", "width");
  for (unsigned k : widths) std::printf(" | %9u", k);
  std::printf("\n------------------------");
  for (std::size_t i = 0; i < widths.size(); ++i) std::printf("-+----------");
  std::printf("\n");
  auto row = [&](const char* label, auto proj) {
    std::printf("%-24s", label);
    for (const Col& c : cols) std::printf(" | %9s", proj(c).c_str());
    std::printf("\n");
  };
  auto num = [](auto v) {
    return std::to_string(static_cast<unsigned long long>(v));
  };
  row("e_ij primary vars", [&](const Col& c) { return num(c.stats.eijVars); });
  row("other primary vars",
      [&](const Col& c) { return num(c.stats.otherPrimaryVars); });
  row("total primary vars",
      [&](const Col& c) { return num(c.stats.totalPrimaryVars()); });
  row("CNF variables", [&](const Col& c) { return num(c.stats.cnfVars); });
  row("CNF clauses", [&](const Col& c) { return num(c.stats.cnfClauses); });
  row("g-equations", [&](const Col& c) { return num(c.stats.gEquations); });
  row("transitivity clauses",
      [&](const Col& c) { return num(c.stats.transitivity.clauses); });
  row("translate time [s]", [&](const Col& c) {
    char b[32];
    std::snprintf(b, sizeof b, "%.2f", c.translateSeconds);
    return std::string(b);
  });
  row("SAT time [s]", [&](const Col& c) { return c.satTime; });
  std::printf(
      "\n(SAT attempts bounded at %lld conflicts — the blowup at this size "
      "is Table 2's point)\n",
      static_cast<long long>(budget));
  return 0;
}
