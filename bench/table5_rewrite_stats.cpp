// Table 5 — statistics of the CNF formulas for correctness when BOTH
// rewriting rules and Positive Equality are used.
//
// The paper's headline structural results reproduce exactly:
//   * the formulas contain NO e_ij variables (newly fetched instructions
//     execute strictly in program order on both sides of the diagram, so
//     read/write are abstracted with general uninterpreted functions);
//   * the statistics are INDEPENDENT of the ROB size — the instructions
//     initially in the ROB were removed by the rewriting rules. We verify
//     this by running every width at two different ROB sizes and checking
//     the resulting CNFs have identical statistics.
// Each width column is independent (two verify() calls, each with its own
// eufm::Context); `--jobs N` (or REPRO_JOBS) fans the columns out on the
// work-stealing pool. Machine-readable results: BENCH_table5_rewrite_stats.json.
#include <cstdio>
#include <future>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "support/thread_pool.hpp"

using namespace velev;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(argc, argv);
  std::vector<unsigned> widths = {1, 2, 4, 8, 16, 32};
  if (bench::fullScale()) {
    widths.push_back(64);
    widths.push_back(128);
  }

  struct Col {
    core::VerifyReport rep;
    bool sizeIndependent;
    double wallSeconds;
  };
  std::vector<Col> cols;
  {
    std::vector<std::future<Col>> pendingCols;
    ThreadPool pool(jobs);
    for (unsigned k : widths) {
      pendingCols.push_back(pool.submit([k] {
        core::VerifyRequest req;
        req.issueWidth = k;
        const unsigned nSmall = std::max(k, 2u);
        const unsigned nLarge = std::max(4 * k, 64u);
        Col col;
        Timer t;
        req.robSize = nLarge;
        col.rep = core::verify(req);
        req.robSize = nSmall;
        const core::VerifyReport small = core::verify(req);
        col.wallSeconds = t.seconds();
        col.sizeIndependent =
            small.evcStats.cnfVars == col.rep.evcStats.cnfVars &&
            small.evcStats.cnfClauses == col.rep.evcStats.cnfClauses &&
            small.evcStats.eijVars == col.rep.evcStats.eijVars;
        return col;
      }));
    }
    for (auto& f : pendingCols) cols.push_back(f.get());
  }

  bench::JsonReport json("table5_rewrite_stats", jobs);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const models::OoOConfig cfg{std::max(4 * widths[i], 64u), widths[i]};
    bench::writeStandardBench(
        json, cfg,
        cols[i].sizeIndependent ? "size-independent" : "SIZE-DEPENDENT",
        cols[i].rep, cols[i].wallSeconds);
  }

  std::printf(
      "Table 5: CNF statistics with rewriting rules + Positive Equality\n"
      "(columns: issue/retire width; independent of ROB size — checked "
      "against two sizes per column)\n");
  std::printf("%-24s", "width");
  for (unsigned k : widths) std::printf(" | %9u", k);
  std::printf("\n------------------------");
  for (std::size_t i = 0; i < widths.size(); ++i) std::printf("-+----------");
  std::printf("\n");

  auto row = [&](const char* label, auto proj) {
    std::printf("%-24s", label);
    for (const Col& c : cols) std::printf(" | %9s", proj(c).c_str());
    std::printf("\n");
  };
  auto num = [](auto v) {
    return std::to_string(static_cast<unsigned long long>(v));
  };
  row("e_ij primary vars",
      [&](const Col& c) { return num(c.rep.evcStats.eijVars); });
  row("other primary vars",
      [&](const Col& c) { return num(c.rep.evcStats.otherPrimaryVars); });
  row("total primary vars",
      [&](const Col& c) { return num(c.rep.evcStats.totalPrimaryVars()); });
  row("CNF variables",
      [&](const Col& c) { return num(c.rep.evcStats.cnfVars); });
  row("CNF clauses",
      [&](const Col& c) { return num(c.rep.evcStats.cnfClauses); });
  row("rewrite rules fired",
      [&](const Col& c) { return num(c.rep.rewriteStats.rulesFired()); });
  row("ROB updates removed",
      [&](const Col& c) { return num(c.rep.updatesRemoved); });
  row("SAT time [s]", [&](const Col& c) {
    char b[32];
    std::snprintf(b, sizeof b, "%.2f", c.rep.satSeconds());
    return std::string(b);
  });
  row("size-independent?", [&](const Col& c) {
    return std::string(c.sizeIndependent ? "yes" : "NO!");
  });
  row("verdict", [&](const Col& c) {
    return std::string(c.rep.verdict() == core::Verdict::Correct ? "correct"
                                                                 : "PROBLEM");
  });
  json.write();
  return 0;
}
