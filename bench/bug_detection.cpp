// Sect. 7.2 buggy-design experiment — a bug is injected into the forwarding
// logic for one of the data operands of the 72nd instruction in a 128-entry
// ROB with issue/retire width 4. The paper: the rewriting rules took 9 s to
// identify the 72nd computation slice as not conforming to the expected
// expression structure (the correct design verified in 10 s), while the
// Positive-Equality-only flow ran out of memory after >6,000 s during the
// EUFM-to-CNF translation.
//
// We reproduce the rewriting-based detection (plus a sweep over other bug
// positions and kinds) and, like the paper, do not attempt the PE-only flow
// at this size.
#include <cstdio>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

void runCase(bench::JsonReport& json, const char* label,
             const core::VerifyRequest& base, const models::BugSpec& bug) {
  core::VerifyRequest req = base;
  req.bug = bug;
  Timer t;
  const core::VerifyReport rep = core::verify(req);
  const double total = t.seconds();
  if (rep.verdict() == core::Verdict::RewriteMismatch) {
    std::printf("%-34s detected at slice %3u in %6.3f s  (%s)\n", label,
                rep.outcome.failedSlice, total, rep.outcome.reason.c_str());
  } else if (rep.verdict() == core::Verdict::Correct) {
    std::printf("%-34s verified correct in %6.3f s\n", label, total);
  } else {
    std::printf("%-34s verdict=%s in %6.3f s\n", label,
                core::verdictName(rep.verdict()), total);
  }

  bench::writeStandardBench(json, req.config(), label, rep, total);
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf(
      "Sect. 7.2 experiment: bug detection by the rewriting rules, "
      "N=128 ROB entries, width 4\n\n");

  bench::JsonReport json("bug_detection");
  core::VerifyRequest base;
  base.robSize = 128;
  base.issueWidth = 4;
  bench::applyBudget(base, bench::parseBudget(/*timeoutSecs=*/0,
                                              /*memBudgetMb=*/0,
                                              /*satConflicts=*/-1));

  runCase(json, "correct design", base, {});
  runCase(json, "fwd bug, slice 72 (paper's bug)", base,
          {models::BugKind::ForwardingWrongOperand, 72});

  std::printf("\nsweep over bug positions and kinds:\n");
  for (unsigned slice : {8u, 37u, 100u, 128u})
    runCase(json, ("fwd bug, slice " + std::to_string(slice)).c_str(), base,
            {models::BugKind::ForwardingWrongOperand, slice});
  runCase(json, "stale-forward bug, slice 64", base,
          {models::BugKind::ForwardingStaleResult, 64});
  runCase(json, "ALU-opcode bug, slice 90", base,
          {models::BugKind::AluWrongOpcode, 90});
  runCase(json, "retire bug, slice 3", base,
          {models::BugKind::RetireIgnoresValidResult, 3});
  runCase(json, "completion-skip bug, slice 50", base,
          {models::BugKind::CompletionSkipsWrite, 50});

  std::printf(
      "\n(the Positive-Equality-only flow is not attempted at this size; "
      "the paper reports it\nran out of memory after >6,000 s during "
      "translation — see bench/table2_pe_only for\nthe blowup at small "
      "sizes)\n");
  json.write();
  return 0;
}
