// paper_scale — the paper-scale push: sweep the Table 1 curve toward the
// paper's largest configuration, ROB size 1,500 at issue width 128.
//
// Unlike the table benches (many small cells fanned out across cores), the
// paper-scale sweep is a few HUGE cells, so the parallelism goes *inside*
// each verification: sequential cells (grid jobs = 1) with cellJobs worker
// threads sharding the rewrite slice checks and the CNF build. Verdicts
// and counters are identical to a single-threaded run (docs/SCALING.md).
//
// Every cell runs under a per-cell resource budget; an exhausted budget
// records a graceful `timeout` / `memout` verdict in the table and the
// JSON — the bench analogue of the paper's "out of memory" entries — and
// the sweep continues with the next cell.
//
// The sweep checkpoints itself: after every finished cell the runner
// rewrites paper_scale.checkpoint.json (atomic tmp+rename), and the next
// invocation restores the finished cells and re-verifies only the rest.
// Kill it, re-run it, and it picks up where it stopped.
//
// Defaults finish in minutes; the environment scales it up:
//   REPRO_FULL=1          add the 500/1000/1500 x 128 cells (hours)
//   REPRO_JOBS=N          worker threads per cell (also: --jobs N)
//   REPRO_TIMEOUT_SECS=S  per-cell wall-clock budget (default 60)
//   REPRO_MEM_BUDGET_MB=M per-cell logical-arena budget (default 2048)
//
// Output: the per-cell table on stdout plus BENCH_paper_scale.json
// (schema: EXPERIMENTS.md).
#include <cinttypes>

#include "bench_util.hpp"

using namespace velev;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parseJobs(argc, argv, 1);
  const ResourceBudget budget = bench::parseBudget(60, 2048, -1);

  // The Table 1 curve: width tracks size at roughly a quarter until the
  // paper's width ceiling of 128, then size keeps growing toward 1,500.
  std::vector<std::pair<unsigned, unsigned>> curve = {
      {16, 4}, {32, 8}, {64, 16}, {128, 32}, {250, 64}};
  if (bench::fullScale()) {
    curve.push_back({500, 128});
    curve.push_back({1000, 128});
    curve.push_back({1500, 128});
  }

  std::vector<core::VerifyRequest> requests;
  requests.reserve(curve.size());
  for (const auto& [n, k] : curve) {
    core::VerifyRequest r;
    r.robSize = n;
    r.issueWidth = k;
    r.strategy = core::Strategy::RewritingPlusPositiveEquality;
    bench::applyBudget(r, budget);
    requests.push_back(r);
  }

  core::GridRunOptions gopts;
  gopts.jobs = 1;  // few huge cells: parallelize inside them, not across
  gopts.cellJobs = jobs;
  gopts.checkpointPath = "paper_scale.checkpoint.json";
  gopts.resume = true;  // a killed sweep re-runs only its unfinished cells

  std::printf("paper_scale: %zu cells toward ROB 1500 x width 128 "
              "(%u worker(s) per cell, timeout %.0f s, mem budget %" PRIu64
              " MiB per cell)\n\n",
              requests.size(), jobs, budget.wallSeconds,
              static_cast<std::uint64_t>(budget.memoryBytes) / (1024 * 1024));

  bench::JsonReport json("paper_scale", jobs);
  const std::vector<core::GridCellResult> results =
      core::runGrid(requests, gopts);

  std::printf("%6s | %6s | %12s | %10s | %10s | %s\n", "ROB", "width",
              "verdict", "seconds", "peak MiB", "note");
  bool refuted = false;
  for (const core::GridCellResult& r : results) {
    const core::Verdict v = r.report.outcome.verdict;
    std::printf("%6u | %6u | %12s | %10.3f | %10.1f | %s\n", r.cell.robSize,
                r.cell.issueWidth, core::verdictName(v), r.wallSeconds,
                static_cast<double>(r.report.outcome.peakArenaBytes) /
                    (1024.0 * 1024.0),
                r.restored ? "restored from checkpoint" : "");
    if (v == core::Verdict::CounterexampleFound ||
        v == core::Verdict::RewriteMismatch)
      refuted = true;
    json.add(r, r.restored ? "restored" : "");
  }

  json.note("timeout_seconds", budget.wallSeconds);
  json.note("mem_budget_mb",
            static_cast<double>(budget.memoryBytes) / (1024.0 * 1024.0));
  json.note("cell_jobs", jobs);
  json.note("full_scale", bench::fullScale() ? 1 : 0);
  json.write();

  // Budget verdicts are graceful by design; only an actual refutation of
  // the (bug-free) design is a failure.
  return refuted ? 1 : 0;
}
