// Table 1 — CPU time for symbolically simulating the out-of-order
// implementation and the specification when generating the EUFM correctness
// formula, over a grid of ROB sizes × issue/retire widths.
//
// Also reports the cone-of-influence ablation (DESIGN.md decision #2): the
// paper notes that restricting evaluation to the active completion slice's
// cone was necessary to simulate large reorder buffers; rerun two
// configurations in naive full-evaluation mode to show the gap.
//
// Grid cells are independent; `--jobs N` (or REPRO_JOBS) fans them out on
// the work-stealing pool — each task builds its OWN eufm::Context (the
// one-context-per-cell ownership rule). Machine-readable results land in
// BENCH_table1_symsim.json.
#include <cstdio>
#include <future>

#include "bench_util.hpp"
#include "core/diagram.hpp"
#include "models/spec.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

double simulateOnce(unsigned n, unsigned k, bool coi,
                    std::uint64_t* evals = nullptr) {
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k});
  auto spec = models::buildSpec(cx, isa);
  tlsim::SimOptions opts;
  opts.coneOfInfluence = coi;
  Timer t;
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec, opts);
  const double secs = t.seconds();
  if (evals)
    *evals = d.implSimStats.signalEvals + d.flushSimStats.signalEvals;
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(argc, argv);
  const auto sizes = bench::robSizes();
  const auto widths = bench::issueWidths();
  bench::JsonReport json("table1_symsim", jobs);

  // Fan every valid (n, k) cell out on the pool, then print in table order.
  struct Cell {
    unsigned n, k;
    std::future<double> seconds;
  };
  std::vector<Cell> cells;
  {
    ThreadPool pool(jobs);
    for (unsigned n : sizes)
      for (unsigned k : widths)
        if (k <= n)
          cells.push_back(Cell{
              n, k, pool.submit([n, k] { return simulateOnce(n, k, true); })});
    // pool destructor drains all cells
  }

  bench::printHeader(
      "Table 1: symbolic simulation time [s] to generate the EUFM "
      "correctness formula\n(rows: ROB size, columns: issue/retire width; "
      "'-' = width exceeds ROB size)",
      "size\\width", widths);
  std::size_t idx = 0;
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      const double secs = cells[idx++].seconds.get();
      bench::printCell(secs);
      bench::JsonCell jc;
      jc.robSize = n;
      jc.issueWidth = k;
      jc.label = "symsim";
      jc.verdict = "simulated";
      jc.wallSeconds = secs;
      jc.memHighWaterKb = rssHighWaterKb();
      json.add(jc);
    }
    bench::endRow();
  }

  std::printf(
      "\nAblation: cone-of-influence (event-driven) vs naive full "
      "re-evaluation\n%10s | %12s | %12s | %10s\n",
      "config", "COI [s]", "naive [s]", "speedup");
  struct Cfg {
    unsigned n, k;
  };
  std::vector<Cfg> ablate = {{16, 2}, {32, 4}, {64, 4}};
  if (bench::fullScale()) ablate.push_back({128, 8});
  for (const Cfg c : ablate) {
    std::uint64_t evalsCoi = 0, evalsNaive = 0;
    const double tc = simulateOnce(c.n, c.k, true, &evalsCoi);
    const double tn = simulateOnce(c.n, c.k, false, &evalsNaive);
    std::printf("%4ux%-5u | %12.3f | %12.3f | %9.1fx   (signal evals: %llu vs %llu)\n",
                c.n, c.k, tc, tn, tn / (tc > 0 ? tc : 1e-9),
                static_cast<unsigned long long>(evalsCoi),
                static_cast<unsigned long long>(evalsNaive));
    bench::JsonCell jc;
    jc.robSize = c.n;
    jc.issueWidth = c.k;
    jc.label = "ablation-naive";
    jc.verdict = "simulated";
    jc.wallSeconds = tn;
    json.add(jc);
  }
  json.write();
  return 0;
}
