// Table 2 — CPU time for checking the unsatisfiability of the CNF formula
// (i.e. the correctness of the implementation processor) when ONLY Positive
// Equality is used — no rewriting rules.
//
// The paper's finding reproduces as a shape: the time explodes with the ROB
// size (their 336 MHz machine: 3 orders of magnitude from 4 to 8 entries;
// 16 entries ran out of the 4 GB of memory after >18,000 s). We run the
// small sizes to completion and report a lower bound (">T") when the
// per-cell conflict budget is exhausted, which plays the role of the
// paper's ">18,000 (Out of Memory)" entries.
//
// The grid cells are independent; `--jobs N` (or REPRO_JOBS) fans them out
// on the parallel grid runner. Machine-readable results land in
// BENCH_table2_pe_only.json.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/grid_runner.hpp"

using namespace velev;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(argc, argv);
  std::vector<unsigned> sizes = {2, 3, 4};
  std::vector<unsigned> widths = {1, 2, 4};
  if (bench::fullScale()) {
    sizes.push_back(8);
    widths.push_back(8);
  }
  const char* budgetEnv = std::getenv("REPRO_SAT_BUDGET");
  const std::int64_t budget =
      budgetEnv ? std::atoll(budgetEnv) : 1500000;  // conflicts per cell

  bench::JsonReport json("table2_pe_only", jobs);
  core::GridOptions gopts;
  gopts.jobs = jobs;
  gopts.verify.strategy = core::Strategy::PositiveEqualityOnly;
  gopts.verify.satConflictBudget = budget;
  const std::vector<core::GridCell> cells = core::makeGrid(sizes, widths);
  const std::vector<core::GridCellResult> results =
      core::runGrid(cells, gopts);

  bench::printHeader(
      "Table 2: SAT-checking time [s] for correctness, Positive Equality "
      "ONLY\n(rows: ROB size; columns: issue/retire width; '>' = conflict "
      "budget exhausted,\nthe analogue of the paper's 'Out of Memory' "
      "entries)",
      "size\\width", widths);
  std::size_t idx = 0;  // results follow makeGrid's (sizes × widths) order
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      const core::GridCellResult& r = results[idx++];
      json.add(r, "pe-only");
      const core::VerifyReport& rep = r.report;
      if (rep.verdict == core::Verdict::Correct) {
        bench::printCell(rep.satSeconds);
      } else if (rep.verdict == core::Verdict::Inconclusive) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ">%.0f", rep.satSeconds);
        bench::printCellText(buf);
      } else {
        bench::printCellText("BUG?");
      }
    }
    bench::endRow();
  }
  std::printf(
      "\n(per-cell SAT conflict budget: %lld; override with "
      "REPRO_SAT_BUDGET; %u jobs)\n",
      static_cast<long long>(budget), jobs);
  json.note("conflict_budget", static_cast<double>(budget));
  json.write();
  return 0;
}
