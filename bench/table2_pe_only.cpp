// Table 2 — CPU time for checking the unsatisfiability of the CNF formula
// (i.e. the correctness of the implementation processor) when ONLY Positive
// Equality is used — no rewriting rules.
//
// The paper's finding reproduces as a shape: the time explodes with the ROB
// size (their 336 MHz machine: 3 orders of magnitude from 4 to 8 entries;
// 16 entries ran out of the 4 GB of memory after >18,000 s). We run the
// small sizes to completion and report a lower bound (">T") when the
// per-cell conflict budget is exhausted, which plays the role of the
// paper's ">18,000 (Out of Memory)" entries.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/verifier.hpp"


using namespace velev;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::vector<unsigned> sizes = {2, 3, 4};
  std::vector<unsigned> widths = {1, 2, 4};
  if (bench::fullScale()) {
    sizes.push_back(8);
    widths.push_back(8);
  }
  const char* budgetEnv = std::getenv("REPRO_SAT_BUDGET");
  const std::int64_t budget =
      budgetEnv ? std::atoll(budgetEnv) : 1500000;  // conflicts per cell

  bench::printHeader(
      "Table 2: SAT-checking time [s] for correctness, Positive Equality "
      "ONLY\n(rows: ROB size; columns: issue/retire width; '>' = conflict "
      "budget exhausted,\nthe analogue of the paper's 'Out of Memory' "
      "entries)",
      "size\\width", widths);
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      core::VerifyOptions opts;
      opts.strategy = core::Strategy::PositiveEqualityOnly;
      opts.satConflictBudget = budget;
      const core::VerifyReport rep = core::verify({n, k}, {}, opts);
      if (rep.verdict == core::Verdict::Correct) {
        bench::printCell(rep.satSeconds);
      } else if (rep.verdict == core::Verdict::Inconclusive) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ">%.0f", rep.satSeconds);
        bench::printCellText(buf);
      } else {
        bench::printCellText("BUG?");
      }
    }
    bench::endRow();
  }
  std::printf(
      "\n(per-cell SAT conflict budget: %lld; override with "
      "REPRO_SAT_BUDGET)\n",
      static_cast<long long>(budget));
  return 0;
}
