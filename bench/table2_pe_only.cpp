// Table 2 — CPU time for checking the unsatisfiability of the CNF formula
// (i.e. the correctness of the implementation processor) when ONLY Positive
// Equality is used — no rewriting rules.
//
// The paper's finding reproduces as a shape: the time explodes with the ROB
// size (their 336 MHz machine: 3 orders of magnitude from 4 to 8 entries;
// 16 entries ran out of the 4 GB of memory after >18,000 s). Every cell
// runs under a per-cell ResourceBudget, so the sweep now includes N=16 by
// default: the blowup cells degrade into "mem-out"/"t/o" table entries —
// the literal analogue of the paper's ">18,000 (Out of Memory)" — instead
// of hanging the sweep or OOM-killing the process. ">T" still marks a cell
// that merely exhausted its SAT conflict budget.
//
// The grid cells are independent; `--jobs N` (or REPRO_JOBS) fans them out
// on the parallel grid runner. Budgets come from REPRO_TIMEOUT_SECS /
// REPRO_MEM_BUDGET_MB / REPRO_SAT_BUDGET. Machine-readable results land in
// BENCH_table2_pe_only.json.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/grid_runner.hpp"

using namespace velev;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(argc, argv);
  // N=16 is the paper's out-of-memory row and runs in the DEFAULT sweep —
  // the budget makes that safe. N=8 completes but is slow, so it stays
  // behind REPRO_FULL.
  std::vector<unsigned> sizes = {2, 3, 4, 16};
  std::vector<unsigned> widths = {1, 2, 4};
  if (bench::fullScale()) {
    sizes.insert(sizes.begin() + 3, 8);
    widths.push_back(8);
  }
  const ResourceBudget budget =
      bench::parseBudget(/*timeoutSecs=*/300, /*memBudgetMb=*/1024,
                         /*satConflicts=*/1500000);

  const bool noInp = bench::noInprocess();
  bench::JsonReport json(
      noInp ? "table2_pe_only_no_inprocess" : "table2_pe_only", jobs);
  core::VerifyRequest base;
  base.strategy = core::Strategy::PositiveEqualityOnly;
  base.inprocess = !noInp;
  bench::applyBudget(base, budget);
  const std::vector<core::VerifyRequest> cells =
      core::makeGridRequests(sizes, widths, base);
  core::GridRunOptions gopts;
  gopts.jobs = jobs;
  gopts.incremental = bench::incrementalGrid();
  const std::vector<core::GridCellResult> results =
      core::runGrid(cells, gopts);

  bench::printHeader(
      "Table 2: SAT-checking time [s] for correctness, Positive Equality "
      "ONLY\n(rows: ROB size; columns: issue/retire width; 'mem-out'/'t/o' "
      "= memory/wall\nbudget exhausted — the paper's 'Out of Memory' "
      "entries; '>' = SAT conflict\nbudget exhausted)",
      "size\\width", widths);
  std::size_t idx = 0;  // results follow makeGridRequests' (sizes × widths)
                        // order
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      const core::GridCellResult& r = results[idx++];
      json.add(r, "pe-only");
      const core::VerifyReport& rep = r.report;
      switch (rep.verdict()) {
        case core::Verdict::Correct:
          bench::printCell(rep.satSeconds());
          break;
        case core::Verdict::Inconclusive: {
          char buf[32];
          std::snprintf(buf, sizeof buf, ">%.0f", rep.satSeconds());
          bench::printCellText(buf);
          break;
        }
        case core::Verdict::MemOut:
          bench::printCellText("mem-out");
          break;
        case core::Verdict::Timeout:
          bench::printCellText("t/o");
          break;
        default:
          bench::printCellText("BUG?");
          break;
      }
    }
    bench::endRow();
  }
  std::printf(
      "\n(per-cell budget: %.0f s wall, %zu MiB arena, %lld SAT conflicts; "
      "override with\nREPRO_TIMEOUT_SECS / REPRO_MEM_BUDGET_MB / "
      "REPRO_SAT_BUDGET; %u jobs)\n",
      budget.wallSeconds, budget.memoryBytes / (1024 * 1024),
      static_cast<long long>(budget.satConflicts), jobs);
  json.note("inprocess", noInp ? 0 : 1);
  json.note("incremental", gopts.incremental ? 1 : 0);
  json.note("conflict_budget", static_cast<double>(budget.satConflicts));
  json.note("timeout_seconds", budget.wallSeconds);
  json.note("mem_budget_mb",
            static_cast<double>(budget.memoryBytes) / (1024 * 1024));
  json.write();
  return 0;
}
