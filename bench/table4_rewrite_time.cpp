// Table 4 — CPU time for translating the EUFM correctness formula to an
// equivalent Boolean formula when BOTH rewriting rules and Positive
// Equality are used (the paper's contribution). The reported time covers
// the rewriting rules plus the EVC translation with the conservative memory
// model — the stage the paper times in Table 4.
#include <cstdio>

#include "bench_util.hpp"
#include "core/verifier.hpp"

using namespace velev;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const auto sizes = bench::robSizes();
  const auto widths = bench::issueWidths();

  bench::printHeader(
      "Table 4: EUFM -> Boolean translation time [s] with rewriting rules + "
      "Positive Equality\n(rows: ROB size, columns: issue/retire width)",
      "size\\width", widths);
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      core::VerifyOptions opts;
      opts.strategy = core::Strategy::RewritingPlusPositiveEquality;
      opts.skipSat = true;  // translation timing only; Table 5 runs SAT
      const core::VerifyReport rep = core::verify({n, k}, {}, opts);
      if (rep.verdict == core::Verdict::RewriteMismatch) {
        bench::printCellText("BUG?");
      } else {
        bench::printCell(rep.rewriteSeconds + rep.translateSeconds);
      }
    }
    bench::endRow();
  }
  std::printf(
      "\n(simulation time is Table 1; SAT time and CNF statistics are "
      "Table 5)\n");
  return 0;
}
