// Table 4 — CPU time for translating the EUFM correctness formula to an
// equivalent Boolean formula when BOTH rewriting rules and Positive
// Equality are used (the paper's contribution). The reported time covers
// the rewriting rules plus the EVC translation with the conservative memory
// model — the stage the paper times in Table 4.
//
// Cells are independent; `--jobs N` (or REPRO_JOBS) runs them on the
// parallel grid runner. Machine-readable results land in
// BENCH_table4_rewrite_time.json.
#include <cstdio>

#include "bench_util.hpp"
#include "core/grid_runner.hpp"

using namespace velev;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(argc, argv);
  const auto sizes = bench::robSizes();
  const auto widths = bench::issueWidths();

  const bool noInp = bench::noInprocess();
  bench::JsonReport json(
      noInp ? "table4_rewrite_time_no_inprocess" : "table4_rewrite_time",
      jobs);
  core::VerifyRequest base;
  base.strategy = core::Strategy::RewritingPlusPositiveEquality;
  base.skipSat = true;  // translation timing only; Table 5 runs SAT
  // skipSat still runs the inprocessing pipeline (stats only), so the
  // sat.inprocess.clauses_before/after counters record the before/after
  // CNF sizes of the rewriting+PE encoding.
  base.inprocess = !noInp;
  const std::vector<core::VerifyRequest> cells =
      core::makeGridRequests(sizes, widths, base);
  core::GridRunOptions gopts;
  gopts.jobs = jobs;
  const std::vector<core::GridCellResult> results =
      core::runGrid(cells, gopts);

  bench::printHeader(
      "Table 4: EUFM -> Boolean translation time [s] with rewriting rules + "
      "Positive Equality\n(rows: ROB size, columns: issue/retire width)",
      "size\\width", widths);
  std::size_t idx = 0;
  for (unsigned n : sizes) {
    bench::printRowLabel(n);
    for (unsigned k : widths) {
      if (k > n) {
        bench::printDash();
        continue;
      }
      const core::GridCellResult& r = results[idx++];
      json.add(r, "rewrite+translate");
      if (r.report.verdict() == core::Verdict::RewriteMismatch) {
        bench::printCellText("BUG?");
      } else {
        bench::printCell(r.report.rewriteSeconds() +
                         r.report.translateSeconds());
      }
    }
    bench::endRow();
  }
  std::printf(
      "\n(simulation time is Table 1; SAT time and CNF statistics are "
      "Table 5; %u jobs)\n",
      jobs);
  json.note("inprocess", noInp ? 0 : 1);
  json.write();
  return 0;
}
