// Ablation (DESIGN.md decision #3): nested-ITE UF elimination vs Ackermann's
// scheme on the Positive-Equality-only verification flow.
//
// The nested-ITE scheme (Bryant–German–Velev, TOCL'01) preserves the p-term
// status of uninterpreted-function outputs, so data values stay maximally
// diverse and only register identifiers need e_ij variables. Ackermann's
// constraints place every output equality in mixed polarity, forfeiting the
// reduction: the e_ij count multiplies on the PE-only flow, and on the
// rewriting flow — where nested-ITE achieves the paper's "no e_ij
// variables, size-independent CNF" (Table 5) — Ackermann re-introduces
// thousands of e_ij variables and blows the CNF up by two orders of
// magnitude. (At tiny PE-only sizes Ackermann's explicit consistency
// lemmas can incidentally help the SAT solver; the structural collapse on
// the rewriting flow is the decisive measurement.)
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/diagram.hpp"
#include "core/verifier.hpp"
#include "evc/translate.hpp"
#include "models/spec.hpp"
#include "sat/solver.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

void runOne(unsigned n, unsigned k, evc::UfScheme scheme,
            std::int64_t budget) {
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  evc::TranslateOptions opts;
  opts.ufScheme = scheme;
  Timer t;
  const evc::Translation tr = evc::translate(cx, d.correctness, opts);
  const double trTime = t.seconds();
  t.reset();
  const sat::Result r = sat::solveCnf(tr.cnf, nullptr, nullptr, budget);
  char satStr[32];
  if (r == sat::Result::Unsat)
    std::snprintf(satStr, sizeof satStr, "%.2f", t.seconds());
  else if (r == sat::Result::Unknown)
    std::snprintf(satStr, sizeof satStr, ">%.0f", t.seconds());
  else
    std::snprintf(satStr, sizeof satStr, "SAT?!");
  std::printf("%4u %2u | %-10s | %8u | %9zu | %10zu | %9.2f | %9s\n", n, k,
              scheme == evc::UfScheme::NestedIte ? "nested-ITE" : "Ackermann",
              tr.stats.eijVars, tr.stats.cnfVars, tr.stats.cnfClauses, trTime,
              satStr);
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::int64_t budget = 300000;
  std::printf(
      "Ablation: UF-elimination scheme on the Positive-Equality-only flow\n"
      "(nested-ITE preserves Positive Equality; Ackermann forfeits it)\n\n");
  std::printf("%4s %2s | %-10s | %8s | %9s | %10s | %9s | %9s\n", "N", "k",
              "scheme", "e_ij", "CNF vars", "CNF claus", "transl[s]",
              "SAT [s]");
  std::printf("--------+------------+----------+-----------+------------+-"
              "----------+----------\n");
  struct Cfg {
    unsigned n, k;
  };
  for (const Cfg c : {Cfg{2, 1}, Cfg{2, 2}, Cfg{3, 1}, Cfg{3, 2}}) {
    runOne(c.n, c.k, evc::UfScheme::NestedIte, budget);
    runOne(c.n, c.k, evc::UfScheme::Ackermann, budget);
  }
  std::printf("\n(SAT attempts bounded at %lld conflicts. At these sizes "
              "Ackermann's extra constraints can even help the solver; the "
              "decisive difference is below.)\n",
              static_cast<long long>(budget));

  // The rewriting flow: here the nested-ITE scheme is what delivers the
  // paper's Table 5 property — no e_ij variables at all, because the
  // surviving formula is almost entirely positive. Ackermann re-introduces
  // general terms even after rewriting.
  std::printf(
      "\nSame ablation on the REWRITING flow (paper Tables 4-5):\n");
  std::printf("%4s %2s | %-10s | %8s | %9s | %10s | %9s | %9s\n", "N", "k",
              "scheme", "e_ij", "CNF vars", "CNF claus", "SAT [s]",
              "verdict");
  std::printf("--------+------------+----------+-----------+------------+-"
              "----------+----------\n");
  bench::JsonReport json("ablation_ufelim");
  for (const Cfg c : {Cfg{16, 4}, Cfg{64, 8}, Cfg{128, 16}}) {
    for (const auto scheme :
         {evc::UfScheme::NestedIte, evc::UfScheme::Ackermann}) {
      core::VerifyRequest req;
      req.robSize = c.n;
      req.issueWidth = c.k;
      req.ufScheme = scheme;
      req.satConflictBudget = budget;
      const core::VerifyReport rep = core::verify(req);
      std::printf("%4u %2u | %-10s | %8u | %9zu | %10zu | %9.2f | %9s\n",
                  c.n, c.k,
                  scheme == evc::UfScheme::NestedIte ? "nested-ITE"
                                                     : "Ackermann",
                  rep.evcStats.eijVars, rep.evcStats.cnfVars,
                  rep.evcStats.cnfClauses, rep.satSeconds(),
                  rep.verdict() == core::Verdict::Correct ? "correct"
                  : rep.verdict() == core::Verdict::Inconclusive
                      ? ">budget"
                      : "PROBLEM");
      bench::writeStandardBench(json, {c.n, c.k},
                                scheme == evc::UfScheme::NestedIte
                                    ? "rewrite-nested-ite"
                                    : "rewrite-ackermann",
                                rep, rep.totalSeconds());
    }
  }
  json.write();
  return 0;
}
