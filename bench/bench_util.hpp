// Shared helpers for the table-reproduction benchmark binaries.
//
// Each bench regenerates one table of the paper's evaluation (Sect. 7) and
// prints it in the paper's layout: ROB sizes as rows, issue/retire widths
// as columns. Default parameters finish in minutes on a laptop; set
// REPRO_FULL=1 in the environment for the paper-scale sweep (ROB sizes up
// to 1,500 and widths up to 128 — hours of runtime and tens of GB, exactly
// as the paper's 4 GB Sun4 needed hours).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/grid_runner.hpp"
#include "support/json.hpp"
#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::bench {

inline bool fullScale() {
  const char* v = std::getenv("REPRO_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Worker threads for the grid benches: `--jobs N` on the command line, or
/// the REPRO_JOBS environment variable, else `fallback`.
inline unsigned parseJobs(int argc, char** argv, unsigned fallback = 1) {
  unsigned jobs = fallback;
  if (const char* env = std::getenv("REPRO_JOBS"); env && env[0] != '\0')
    jobs = static_cast<unsigned>(std::atoi(env));
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--jobs")
      jobs = static_cast<unsigned>(std::atoi(argv[i + 1]));
  return jobs < 1 ? 1 : jobs;
}

// ---- machine-readable bench output ----------------------------------------
// Every bench writes BENCH_<name>.json next to its table so the perf
// trajectory is trackable across PRs. Schema (documented in EXPERIMENTS.md):
//   { "bench": str, "jobs": uint, "cells": [ { "rob_size": uint,
//     "width": uint, "label": str, "verdict": str, "wall_seconds": num,
//     "sat_conflicts": uint, "mem_high_water_kb": uint } ... ],
//     "notes": { str: num ... }, "total_wall_seconds": num }

struct JsonCell {
  unsigned robSize = 0;
  unsigned issueWidth = 0;
  std::string label;        // e.g. strategy or phase; may be empty
  std::string verdict;      // core::verdictName() or bench-specific
  double wallSeconds = 0;
  std::uint64_t satConflicts = 0;
  std::size_t memHighWaterKb = 0;
};

class JsonReport {
 public:
  explicit JsonReport(std::string name, unsigned jobs = 1)
      : name_(std::move(name)), jobs_(jobs) {}

  void add(JsonCell cell) { cells_.push_back(std::move(cell)); }

  void add(const core::GridCellResult& r, std::string label = {}) {
    JsonCell c;
    c.robSize = r.cell.robSize;
    c.issueWidth = r.cell.issueWidth;
    c.label = std::move(label);
    c.verdict = r.skipped ? "skipped" : core::verdictName(r.report.verdict);
    c.wallSeconds = r.wallSeconds;
    c.satConflicts = r.report.satStats.conflicts;
    c.memHighWaterKb = r.memHighWaterKb;
    cells_.push_back(std::move(c));
  }

  /// Scalar extras (speedups, budgets, ...) under the "notes" object.
  void note(std::string key, double value) {
    notes_.emplace_back(std::move(key), value);
  }

  /// Writes BENCH_<name>.json in the current directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    JsonWriter w(os);
    w.beginObject();
    w.kv("bench", name_);
    w.kv("jobs", jobs_);
    w.key("cells");
    w.beginArray();
    for (const JsonCell& c : cells_) {
      w.beginObject();
      w.kv("rob_size", c.robSize);
      w.kv("width", c.issueWidth);
      if (!c.label.empty()) w.kv("label", c.label);
      w.kv("verdict", c.verdict);
      w.kv("wall_seconds", c.wallSeconds);
      w.kv("sat_conflicts", c.satConflicts);
      w.kv("mem_high_water_kb", static_cast<std::uint64_t>(c.memHighWaterKb));
      w.endObject();
    }
    w.endArray();
    if (!notes_.empty()) {
      w.key("notes");
      w.beginObject();
      for (const auto& [k, v] : notes_) w.kv(k, v);
      w.endObject();
    }
    w.kv("total_wall_seconds", total_.seconds());
    w.endObject();
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  unsigned jobs_ = 1;
  std::vector<JsonCell> cells_;
  std::vector<std::pair<std::string, double>> notes_;
  Timer total_;  // started at construction
};

/// Default / full-scale ROB sizes (paper: 4..1500).
inline std::vector<unsigned> robSizes() {
  std::vector<unsigned> s = {4, 8, 16, 32, 64, 128, 250};
  if (fullScale()) {
    s.push_back(500);
    s.push_back(1000);
    s.push_back(1500);
  }
  return s;
}

/// Default / full-scale issue widths (paper: 1..128).
inline std::vector<unsigned> issueWidths() {
  std::vector<unsigned> w = {1, 2, 4, 8, 16};
  if (fullScale()) {
    w.push_back(32);
    w.push_back(64);
    w.push_back(128);
  }
  return w;
}

inline void printHeader(const char* title, const char* corner,
                        const std::vector<unsigned>& widths) {
  std::printf("%s\n", title);
  std::printf("%10s", corner);
  for (unsigned w : widths) std::printf(" | %9u", w);
  std::printf("\n");
  std::printf("----------");
  for (std::size_t i = 0; i < widths.size(); ++i) std::printf("-+----------");
  std::printf("\n");
}

inline void printRowLabel(unsigned size) { std::printf("%10u", size); }

inline void printCell(double seconds) { std::printf(" | %9.3f", seconds); }

inline void printCellCount(std::size_t n) {
  std::printf(" | %9zu", n);
}

/// The paper prints a dash for impossible configurations (width > size).
inline void printDash() { std::printf(" | %9s", "-"); }

inline void printCellText(const std::string& s) {
  std::printf(" | %9s", s.c_str());
}

inline void endRow() { std::printf("\n"); }

}  // namespace velev::bench
