// Shared helpers for the table-reproduction benchmark binaries.
//
// Each bench regenerates one table of the paper's evaluation (Sect. 7) and
// prints it in the paper's layout: ROB sizes as rows, issue/retire widths
// as columns. Default parameters finish in minutes on a laptop; set
// REPRO_FULL=1 in the environment for the paper-scale sweep (ROB sizes up
// to 1,500 and widths up to 128 — hours of runtime and tens of GB, exactly
// as the paper's 4 GB Sun4 needed hours).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace velev::bench {

inline bool fullScale() {
  const char* v = std::getenv("REPRO_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Default / full-scale ROB sizes (paper: 4..1500).
inline std::vector<unsigned> robSizes() {
  std::vector<unsigned> s = {4, 8, 16, 32, 64, 128, 250};
  if (fullScale()) {
    s.push_back(500);
    s.push_back(1000);
    s.push_back(1500);
  }
  return s;
}

/// Default / full-scale issue widths (paper: 1..128).
inline std::vector<unsigned> issueWidths() {
  std::vector<unsigned> w = {1, 2, 4, 8, 16};
  if (fullScale()) {
    w.push_back(32);
    w.push_back(64);
    w.push_back(128);
  }
  return w;
}

inline void printHeader(const char* title, const char* corner,
                        const std::vector<unsigned>& widths) {
  std::printf("%s\n", title);
  std::printf("%10s", corner);
  for (unsigned w : widths) std::printf(" | %9u", w);
  std::printf("\n");
  std::printf("----------");
  for (std::size_t i = 0; i < widths.size(); ++i) std::printf("-+----------");
  std::printf("\n");
}

inline void printRowLabel(unsigned size) { std::printf("%10u", size); }

inline void printCell(double seconds) { std::printf(" | %9.3f", seconds); }

inline void printCellCount(std::size_t n) {
  std::printf(" | %9zu", n);
}

/// The paper prints a dash for impossible configurations (width > size).
inline void printDash() { std::printf(" | %9s", "-"); }

inline void printCellText(const std::string& s) {
  std::printf(" | %9s", s.c_str());
}

inline void endRow() { std::printf("\n"); }

}  // namespace velev::bench
