// Shared helpers for the table-reproduction benchmark binaries.
//
// Each bench regenerates one table of the paper's evaluation (Sect. 7) and
// prints it in the paper's layout: ROB sizes as rows, issue/retire widths
// as columns. Default parameters finish in minutes on a laptop; set
// REPRO_FULL=1 in the environment for the paper-scale sweep (ROB sizes up
// to 1,500 and widths up to 128 — hours of runtime and tens of GB, exactly
// as the paper's 4 GB Sun4 needed hours).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/grid_runner.hpp"
#include "core/report_json.hpp"
#include "support/json.hpp"
#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::bench {

inline bool fullScale() {
  const char* v = std::getenv("REPRO_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// REPRO_NO_INPROCESS=1 disables the SAT stage's inprocessing front end —
/// the pre-simplification baseline. Benches that honor it also suffix
/// their JSON name with "_no_inprocess", so CI can upload both variants of
/// the same table side by side.
inline bool noInprocess() {
  const char* v = std::getenv("REPRO_NO_INPROCESS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// REPRO_INCREMENTAL=1 shares one incremental SAT session across the grid
/// cells (sequential execution; see core::GridRunOptions::incremental).
inline bool incrementalGrid() {
  const char* v = std::getenv("REPRO_INCREMENTAL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Worker threads for the grid benches: `--jobs N` on the command line, or
/// the REPRO_JOBS environment variable, else `fallback`.
inline unsigned parseJobs(int argc, char** argv, unsigned fallback = 1) {
  unsigned jobs = fallback;
  if (const char* env = std::getenv("REPRO_JOBS"); env && env[0] != '\0')
    jobs = static_cast<unsigned>(std::atoi(env));
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--jobs")
      jobs = static_cast<unsigned>(std::atoi(argv[i + 1]));
  return jobs < 1 ? 1 : jobs;
}

inline double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::atof(v) : fallback;
}

/// Per-cell resource budget for the benches, from the environment:
///   REPRO_TIMEOUT_SECS   wall-clock seconds per cell (<= 0: unlimited)
///   REPRO_MEM_BUDGET_MB  logical-arena MiB per cell (<= 0: unlimited)
///   REPRO_SAT_BUDGET     SAT conflicts per cell (< 0: unlimited)
/// Over-budget cells record a timeout/memout verdict in the table and the
/// JSON instead of hanging the sweep or getting the process OOM-killed —
/// the bench analogue of the paper's "out of memory" table entries.
inline ResourceBudget parseBudget(double timeoutSecs, double memBudgetMb,
                                  std::int64_t satConflicts) {
  ResourceBudget b;
  b.wallSeconds = envDouble("REPRO_TIMEOUT_SECS", timeoutSecs);
  const double mb = envDouble("REPRO_MEM_BUDGET_MB", memBudgetMb);
  b.memoryBytes = mb > 0 ? static_cast<std::size_t>(mb * 1024 * 1024) : 0;
  if (const char* env = std::getenv("REPRO_SAT_BUDGET"); env && env[0] != '\0')
    b.satConflicts = std::atoll(env);
  else
    b.satConflicts = satConflicts;
  return b;
}

/// Stamp a parseBudget() result onto a request's budget fields.
inline void applyBudget(core::VerifyRequest& req, const ResourceBudget& b) {
  req.timeoutSeconds = b.wallSeconds;
  req.memoryBudgetBytes = b.memoryBytes;
  req.satConflictBudget = b.satConflicts;
}

// ---- machine-readable bench output ----------------------------------------
// Every bench writes BENCH_<name>.json next to its table so the perf
// trajectory is trackable across PRs. Schema (documented in EXPERIMENTS.md):
//   { "bench": str, "jobs": uint, "cells": [ <core::ReportCell> ... ],
//     "notes": { str: num ... }, "total_wall_seconds": num }
// The per-cell object is the shared core::writeReportCell() schema (see
// core/report_json.hpp) — the same record velev_verify --json and the
// velev_serve replay bench emit: rob_size, width, label?, verdict, reason?,
// wall_seconds, sat_conflicts, peak_arena_bytes, mem_high_water_kb,
// fell_back?/first_verdict?, counters?, stage_seconds?. "verdict" includes
// the budget verdicts "timeout" and "memout"; "counters" is the canonical
// paper-aligned block (core::reportCounters — the same names the --trace
// manifests record; see docs/TRACE_FORMAT.md).

/// The benches populate core::ReportCell directly; the old bench-local
/// JsonCell spelling is kept as an alias.
using JsonCell = core::ReportCell;

class JsonReport {
 public:
  explicit JsonReport(std::string name, unsigned jobs = 1)
      : name_(std::move(name)), jobs_(jobs) {}

  void add(JsonCell cell) { cells_.push_back(std::move(cell)); }

  void add(const core::GridCellResult& r, std::string label = {}) {
    cells_.push_back(core::makeReportCell(r, std::move(label)));
  }

  /// Scalar extras (speedups, budgets, ...) under the "notes" object.
  void note(std::string key, double value) {
    notes_.emplace_back(std::move(key), value);
  }

  /// Writes BENCH_<name>.json in the current directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    JsonWriter w(os);
    w.beginObject();
    w.kv("bench", name_);
    w.kv("jobs", jobs_);
    w.key("cells");
    w.beginArray();
    for (const JsonCell& c : cells_) core::writeReportCell(w, c);
    w.endArray();
    if (!notes_.empty()) {
      w.key("notes");
      w.beginObject();
      for (const auto& [k, v] : notes_) w.kv(k, v);
      w.endObject();
    }
    w.kv("total_wall_seconds", total_.seconds());
    w.endObject();
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  unsigned jobs_ = 1;
  std::vector<JsonCell> cells_;
  std::vector<std::pair<std::string, double>> notes_;
  Timer total_;  // started at construction
};

/// Append the standard cell for a finished VerifyReport: verdict, reason,
/// resource accounting and the canonical counter block
/// (core::reportCounters — which appends the bdd.* counters whenever the
/// run used the BDD engine). Every bench that judges cells through
/// core::verify()/verifyWith() emits its JSON cells through here so the
/// BENCH_*.json schema stays uniform across benches; benches that go
/// through the grid runner get the same block via JsonReport::add(
/// GridCellResult).
inline void writeStandardBench(JsonReport& json, const models::OoOConfig& cfg,
                               std::string label,
                               const core::VerifyReport& rep,
                               double wallSeconds) {
  json.add(core::makeReportCell(cfg, std::move(label), rep, wallSeconds,
                                rssHighWaterKb()));
}

/// Default / full-scale ROB sizes (paper: 4..1500).
inline std::vector<unsigned> robSizes() {
  std::vector<unsigned> s = {4, 8, 16, 32, 64, 128, 250};
  if (fullScale()) {
    s.push_back(500);
    s.push_back(1000);
    s.push_back(1500);
  }
  return s;
}

/// Default / full-scale issue widths (paper: 1..128).
inline std::vector<unsigned> issueWidths() {
  std::vector<unsigned> w = {1, 2, 4, 8, 16};
  if (fullScale()) {
    w.push_back(32);
    w.push_back(64);
    w.push_back(128);
  }
  return w;
}

inline void printHeader(const char* title, const char* corner,
                        const std::vector<unsigned>& widths) {
  std::printf("%s\n", title);
  std::printf("%10s", corner);
  for (unsigned w : widths) std::printf(" | %9u", w);
  std::printf("\n");
  std::printf("----------");
  for (std::size_t i = 0; i < widths.size(); ++i) std::printf("-+----------");
  std::printf("\n");
}

inline void printRowLabel(unsigned size) { std::printf("%10u", size); }

inline void printCell(double seconds) { std::printf(" | %9.3f", seconds); }

inline void printCellCount(std::size_t n) {
  std::printf(" | %9zu", n);
}

/// The paper prints a dash for impossible configurations (width > size).
inline void printDash() { std::printf(" | %9s", "-"); }

inline void printCellText(const std::string& s) {
  std::printf(" | %9s", s.c_str());
}

inline void endRow() { std::printf("\n"); }

}  // namespace velev::bench
