// The paper's headline claim: rewriting rules give up to FIVE orders of
// magnitude speedup over Positive Equality alone (ROB size 8, width 8:
// 38,708 s -> 0.35 s on their 336 MHz machine).
//
// On modern hardware the same-shape comparison is run at the largest size
// where the PE-only flow still terminates in reasonable time (default:
// ROB size 4, width 4; REPRO_FULL attempts 8/8 with a large budget). The
// quantity reported is the end-to-end verification time of each strategy
// and their ratio.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

double runStrategy(const models::OoOConfig& cfg, core::Strategy strategy,
                   std::int64_t budget, bool* completed,
                   core::VerifyReport* out = nullptr) {
  core::VerifyOptions opts;
  opts.strategy = strategy;
  opts.satConflictBudget = budget;
  Timer t;
  const core::VerifyReport rep = core::verify(cfg, {}, opts);
  *completed = rep.verdict == core::Verdict::Correct;
  if (out) *out = rep;
  return t.seconds();
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const models::OoOConfig cfg =
      bench::fullScale() ? models::OoOConfig{8, 8} : models::OoOConfig{4, 4};
  const std::int64_t budget = bench::fullScale() ? 50000000 : 3000000;

  std::printf(
      "Headline experiment (paper Sect. 7.2): rewriting rules vs Positive "
      "Equality alone,\nROB size %u, issue/retire width %u\n\n",
      cfg.robSize, cfg.issueWidth);

  bool rwOk = false, peOk = false;
  core::VerifyReport rwRep;
  const double rwTime = runStrategy(
      cfg, core::Strategy::RewritingPlusPositiveEquality, -1, &rwOk, &rwRep);
  std::printf(
      "rewriting + Positive Equality : %8.3f s  (%s; sim %.3f, rewrite "
      "%.3f, translate %.3f, SAT %.3f)\n",
      rwTime, rwOk ? "correct" : "PROBLEM", rwRep.simSeconds,
      rwRep.rewriteSeconds, rwRep.translateSeconds, rwRep.satSeconds);

  const double peTime = runStrategy(cfg, core::Strategy::PositiveEqualityOnly,
                                    budget, &peOk);
  if (peOk) {
    std::printf("Positive Equality only        : %8.3f s  (correct)\n",
                peTime);
    std::printf("\nspeedup from rewriting rules  : %10.0fx  (~%.1f orders "
                "of magnitude)\n",
                peTime / rwTime, std::log10(peTime / rwTime));
  } else {
    std::printf(
        "Positive Equality only        : >%7.3f s  (conflict budget %lld "
        "exhausted)\n",
        peTime, static_cast<long long>(budget));
    std::printf(
        "\nspeedup from rewriting rules  : >%9.0fx  (>%.1f orders of "
        "magnitude; lower bound)\n",
        peTime / rwTime, std::log10(peTime / rwTime));
  }
  std::printf(
      "\n(paper, 336 MHz Sun4: 38,708 s -> 0.35 s at size 8 / width 8 — "
      "5 orders of magnitude)\n");
  return 0;
}
