// The paper's headline claim: rewriting rules give up to FIVE orders of
// magnitude speedup over Positive Equality alone (ROB size 8, width 8:
// 38,708 s -> 0.35 s on their 336 MHz machine).
//
// On modern hardware the same-shape comparison is run at the largest size
// where the PE-only flow still terminates in reasonable time (default:
// ROB size 4, width 4; REPRO_FULL attempts 8/8 with a large budget). The
// quantity reported is the end-to-end verification time of each strategy
// and their ratio.
//
// Part 2 measures the OTHER axis of speed — hardware parallelism: the
// default verification grid (rewriting strategy) is run once sequentially
// and once on the work-stealing grid runner with `--jobs N` workers
// (default: min(4, hardware threads); REPRO_JOBS overrides). Cell-by-cell
// verdicts must be identical; the wall-clock ratio is the parallel
// speedup. Machine-readable results land in BENCH_speedup_headline.json.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/grid_runner.hpp"
#include "core/verifier.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

double runStrategy(const models::OoOConfig& cfg, core::Strategy strategy,
                   std::int64_t budget, bool* completed,
                   core::VerifyReport* out = nullptr) {
  core::VerifyRequest req;
  req.robSize = cfg.robSize;
  req.issueWidth = cfg.issueWidth;
  req.strategy = strategy;
  req.satConflictBudget = budget;
  Timer t;
  const core::VerifyReport rep = core::verify(req);
  *completed = rep.verdict() == core::Verdict::Correct;
  if (out) *out = rep;
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned jobs = bench::parseJobs(
      argc, argv, std::min(4u, ThreadPool::hardwareThreads()));
  bench::JsonReport json("speedup_headline", jobs);
  const models::OoOConfig cfg =
      bench::fullScale() ? models::OoOConfig{8, 8} : models::OoOConfig{4, 4};
  const std::int64_t budget = bench::fullScale() ? 50000000 : 3000000;

  std::printf(
      "Headline experiment (paper Sect. 7.2): rewriting rules vs Positive "
      "Equality alone,\nROB size %u, issue/retire width %u\n\n",
      cfg.robSize, cfg.issueWidth);

  bool rwOk = false, peOk = false;
  core::VerifyReport rwRep;
  const double rwTime = runStrategy(
      cfg, core::Strategy::RewritingPlusPositiveEquality, -1, &rwOk, &rwRep);
  std::printf(
      "rewriting + Positive Equality : %8.3f s  (%s; sim %.3f, rewrite "
      "%.3f, translate %.3f, SAT %.3f)\n",
      rwTime, rwOk ? "correct" : "PROBLEM", rwRep.simSeconds(),
      rwRep.rewriteSeconds(), rwRep.translateSeconds(), rwRep.satSeconds());
  bench::writeStandardBench(json, cfg, "headline-rewrite", rwRep, rwTime);

  core::VerifyReport peRep;
  const double peTime = runStrategy(cfg, core::Strategy::PositiveEqualityOnly,
                                    budget, &peOk, &peRep);
  bench::writeStandardBench(json, cfg, "headline-pe-only", peRep, peTime);
  if (peOk) {
    std::printf("Positive Equality only        : %8.3f s  (correct)\n",
                peTime);
    std::printf("\nspeedup from rewriting rules  : %10.0fx  (~%.1f orders "
                "of magnitude)\n",
                peTime / rwTime, std::log10(peTime / rwTime));
  } else {
    std::printf(
        "Positive Equality only        : >%7.3f s  (conflict budget %lld "
        "exhausted)\n",
        peTime, static_cast<long long>(budget));
    std::printf(
        "\nspeedup from rewriting rules  : >%9.0fx  (>%.1f orders of "
        "magnitude; lower bound)\n",
        peTime / rwTime, std::log10(peTime / rwTime));
  }
  json.note("rewrite_vs_pe_speedup", peTime / rwTime);
  std::printf(
      "\n(paper, 336 MHz Sun4: 38,708 s -> 0.35 s at size 8 / width 8 — "
      "5 orders of magnitude)\n");

  // ---- part 2: parallel grid runner scaling -------------------------------
  std::vector<unsigned> sizes = {16, 32, 64, 128};
  std::vector<unsigned> widths = {1, 2, 4};
  if (bench::fullScale()) sizes.push_back(250);
  core::VerifyRequest gridBase;
  gridBase.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const std::vector<core::VerifyRequest> cells =
      core::makeGridRequests(sizes, widths, gridBase);

  core::GridRunOptions gopts;
  gopts.jobs = 1;
  Timer tSeq;
  const auto seq = core::runGrid(cells, gopts);
  const double seqSec = tSeq.seconds();
  for (const auto& r : seq) json.add(r, "grid-jobs1");

  gopts.jobs = jobs;
  Timer tPar;
  const auto par = core::runGrid(cells, gopts);
  const double parSec = tPar.seconds();
  for (const auto& r : par) json.add(r, "grid-jobsN");

  bool verdictsMatch = true;
  for (std::size_t i = 0; i < cells.size(); ++i)
    verdictsMatch &= seq[i].report.verdict() == par[i].report.verdict();

  std::printf(
      "\nParallel grid runner (%zu cells, rewriting strategy, sizes up to "
      "%u):\n  sequential        : %8.3f s\n  %2u jobs           : %8.3f s\n"
      "  parallel speedup  : %8.2fx on %u hardware threads\n"
      "  verdicts identical: %s\n",
      cells.size(), sizes.back(), seqSec, jobs, parSec, seqSec / parSec,
      ThreadPool::hardwareThreads(), verdictsMatch ? "yes" : "NO!");
  json.note("grid_cells", static_cast<double>(cells.size()));
  json.note("grid_sequential_seconds", seqSec);
  json.note("grid_parallel_seconds", parSec);
  json.note("grid_parallel_speedup", seqSec / parSec);
  json.note("verdicts_identical", verdictsMatch ? 1 : 0);
  json.write();
  return verdictsMatch ? 0 : 1;
}
