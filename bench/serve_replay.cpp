// Replay benchmark for the velev_serve daemon: drives an in-process
// VerifyServer with a skewed stream of >= 1000 requests drawn from a pool
// of ~48 distinct small cells (both strategies, both engines, bug
// injections, UF-scheme and simulation variants), from several client
// threads at once — the serving path minus the socket.
//
// Four checks gate the exit code:
//   * pass 1 measures cold throughput and per-request latency percentiles
//     (most requests hit or coalesce; every distinct cell is verified
//     exactly once);
//   * an equivalence sweep asks the server for every distinct cell again
//     and compares the cached answer against a fresh in-process
//     core::verify() of the same request — verdict and the full canonical
//     counter block must match exactly (a cache that changes answers is
//     worse than no cache);
//   * pass 2 replays the identical stream and must be served >= 90% from
//     the cache;
//   * pass 3 restarts the server (a NEW VerifyServer over the same
//     --cache-dir journal) and replays the stream again: >= 90% must be
//     served warm from the persisted cache, with every answer still
//     identical to the fresh verification of pass 1.
// Every pass also gates on ZERO error responses: a request answered with
// an InternalError (or any error) fails the bench even if throughput and
// hit rates look fine — the retry machinery exists so clients never see
// one. Any failed check exits 1. Results land in BENCH_serve.json: one
// cell per distinct pool request (the standard ReportCell schema) plus
// throughput, latency and hit-rate notes.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/request.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/timer.hpp"

namespace velev {
namespace {

// The distinct request pool: small cells only (seconds each at most), no
// wall-clock timeouts — every outcome is deterministic and cacheable.
std::vector<core::VerifyRequest> buildPool() {
  std::vector<core::VerifyRequest> pool;
  const auto add = [&pool](core::VerifyRequest req) {
    if (!req.validate().has_value()) pool.push_back(req);
  };
  const unsigned sizes[] = {2, 3, 4, 5, 6, 8};
  const unsigned widths[] = {1, 2};

  for (unsigned n : sizes)
    for (unsigned k : widths) {
      if (k > n) continue;
      core::VerifyRequest req;
      req.robSize = n;
      req.issueWidth = k;
      add(req);  // rewriting + SAT, the default path

      core::VerifyRequest bug = req;  // a counterexample per cell
      bug.bug = {models::BugKind::ForwardingWrongOperand, 1};
      add(bug);

      if (n <= 4) {  // PE-only blows up steeply; keep it tiny
        core::VerifyRequest pe = req;
        pe.strategy = core::Strategy::PositiveEqualityOnly;
        add(pe);
      }
      if (n <= 3) {  // cross-checked SAT + BDD
        core::VerifyRequest both = req;
        both.engine = core::Engine::Both;
        add(both);
      }
      if (n >= 3) {
        core::VerifyRequest alu = req;
        alu.bug = {models::BugKind::AluWrongOpcode, 1};
        add(alu);
      }
      if (n >= 4) {  // translation-only cells
        core::VerifyRequest skip = req;
        skip.skipSat = true;
        add(skip);
      }
    }
  for (unsigned n : {2u, 3u}) {  // UF-scheme ablation cells
    core::VerifyRequest req;
    req.robSize = n;
    req.issueWidth = 1;
    req.strategy = core::Strategy::PositiveEqualityOnly;
    req.ufScheme = evc::UfScheme::Ackermann;
    add(req);
  }
  for (unsigned n : {3u, 4u}) {  // naive (no cone-of-influence) simulation
    core::VerifyRequest req;
    req.robSize = n;
    req.issueWidth = 2;
    req.coneOfInfluence = false;
    add(req);
  }
  return pool;
}

/// Deterministic skewed draw sequence: an LCG squashed quadratically so
/// low pool indices are hot (a few cells dominate, the tail is rare) —
/// the access pattern a result cache exists for.
std::vector<std::size_t> buildDraws(std::size_t count, std::size_t poolSize) {
  std::vector<std::size_t> draws(count);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(x >> 33) / 2147483648.0;
    draws[i] = std::min(poolSize - 1,
                        static_cast<std::size_t>(u * u * poolSize));
  }
  return draws;
}

double percentileMs(std::vector<double>& sortedSeconds, double p) {
  if (sortedSeconds.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sortedSeconds.size() - 1));
  return sortedSeconds[idx] * 1000.0;
}

/// One replay pass: `clients` threads round-robin the draw sequence
/// through handleLine, recording per-request wall seconds. Error responses
/// are COUNTED (into *errorResponses), not short-circuited — the zero-error
/// gate wants the total, and a lost request must not hide behind an early
/// return. Returns all latencies (unsorted).
std::vector<double> replay(serve::VerifyServer& server,
                           const std::vector<core::VerifyRequest>& pool,
                           const std::vector<std::size_t>& draws,
                           unsigned clients, std::size_t* errorResponses,
                           bool* ok) {
  std::vector<std::vector<double>> perThread(clients);
  std::vector<std::size_t> perThreadErrors(clients, 0);
  std::vector<std::string> firstError(clients);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < clients; ++t)
    threads.emplace_back([&, t] {
      perThread[t].reserve(draws.size() / clients + 1);
      for (std::size_t i = t; i < draws.size(); i += clients) {
        core::VerifyRequest req = pool[draws[i]];
        req.id = i + 1;
        const Timer timer;
        const std::string line =
            server.handleLine(compactJson(req.toJson()));
        perThread[t].push_back(timer.seconds());
        std::string perr;
        const auto resp = core::VerifyResponse::parse(line, &perr);
        std::string why;
        if (!resp.has_value()) why = "unparsable response: " + perr;
        else if (!resp->error.empty()) why = "server error: " + resp->error;
        else if (resp->id != i + 1) why = "response id mismatch";
        if (!why.empty()) {
          ++perThreadErrors[t];
          if (firstError[t].empty()) firstError[t] = why;
        }
      }
    });
  for (auto& t : threads) t.join();
  std::vector<double> latencies;
  for (const auto& v : perThread)
    latencies.insert(latencies.end(), v.begin(), v.end());
  std::size_t total = 0;
  for (unsigned t = 0; t < clients; ++t) {
    total += perThreadErrors[t];
    if (!firstError[t].empty())
      std::fprintf(stderr, "replay client %u: %zu bad responses (first: %s)\n",
                   t, perThreadErrors[t], firstError[t].c_str());
  }
  if (errorResponses != nullptr) *errorResponses = total;
  if (total > 0) {
    std::fprintf(stderr,
                 "zero-error gate FAILED: %zu of %zu requests answered with "
                 "an error\n",
                 total, draws.size());
    *ok = false;
  }
  return latencies;
}

}  // namespace
}  // namespace velev

int main(int argc, char** argv) {
  using namespace velev;

  const unsigned jobs = bench::parseJobs(argc, argv, 4);
  const unsigned clients = jobs * 2;
  const std::size_t kRequests = bench::fullScale() ? 10000 : 1000;

  const std::vector<core::VerifyRequest> pool = buildPool();
  const std::vector<std::size_t> draws = buildDraws(kRequests, pool.size());
  std::printf("serve_replay: %zu requests over %zu distinct cells, "
              "%u clients, %u jobs\n",
              kRequests, pool.size(), clients, jobs);

  // The persistent-cache journal lives in a scratch directory under the
  // working directory; a fresh run never inherits a previous journal.
  const std::string cacheDir = "serve_replay_cache";
  std::filesystem::remove_all(cacheDir);

  serve::ServerOptions opts;
  opts.jobs = jobs;
  opts.cacheDir = cacheDir;
  auto server = std::make_unique<serve::VerifyServer>(opts);
  bench::JsonReport json("serve", jobs);
  bool ok = true;

  // ---- pass 1: cold cache --------------------------------------------------
  const Timer pass1Timer;
  std::size_t pass1Errors = 0;
  std::vector<double> latencies =
      replay(*server, pool, draws, clients, &pass1Errors, &ok);
  const double pass1Wall = pass1Timer.seconds();
  std::sort(latencies.begin(), latencies.end());
  const auto cold = server->cacheStats();
  std::printf("pass 1 (cold): %.2f s, %.0f req/s | p50 %.2f ms  p90 %.2f ms "
              "p99 %.2f ms | %llu misses, %llu hits, %llu coalesced\n",
              pass1Wall, static_cast<double>(kRequests) / pass1Wall,
              percentileMs(latencies, 0.5), percentileMs(latencies, 0.9),
              percentileMs(latencies, 0.99),
              static_cast<unsigned long long>(cold.misses),
              static_cast<unsigned long long>(cold.hits),
              static_cast<unsigned long long>(cold.coalesced));

  // ---- equivalence: cached answers vs fresh in-process verification --------
  // The fresh answers are kept: pass 3 re-checks the journal-restored cache
  // against them without verifying everything a second time.
  std::vector<core::Verdict> freshVerdicts(pool.size());
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>>
      freshCounters(pool.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    core::VerifyRequest req = pool[i];
    req.id = 100000 + i;
    std::string perr;
    const auto resp = core::VerifyResponse::parse(
        server->handleLine(compactJson(req.toJson())), &perr);
    if (!resp.has_value() || !resp->error.empty()) {
      std::fprintf(stderr, "equivalence cell %zu: no answer (%s%s)\n", i,
                   perr.c_str(), resp ? resp->error.c_str() : "");
      ++mismatches;
      continue;
    }
    const Timer freshTimer;
    const core::VerifyReport rep = core::verify(req);
    const double freshWall = freshTimer.seconds();
    freshVerdicts[i] = rep.verdict();
    freshCounters[i] = core::reportCounters(rep);
    if (resp->verdict != rep.verdict() ||
        resp->counters != core::reportCounters(rep)) {
      std::fprintf(stderr,
                   "equivalence cell %zu (N=%u k=%u %s): cached %s != "
                   "fresh %s or counters differ\n",
                   i, req.robSize, req.issueWidth,
                   core::strategyName(req.strategy),
                   core::verdictName(resp->verdict),
                   core::verdictName(rep.verdict()));
      ++mismatches;
    }
    const std::string label = std::string(core::strategyName(req.strategy)) +
                              "/" + core::engineName(req.engine) +
                              (req.bug.kind == models::BugKind::None
                                   ? ""
                                   : std::string("/") +
                                         models::bugKindName(req.bug.kind));
    bench::writeStandardBench(json, req.config(), label, rep, freshWall);
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "equivalence FAILED: %zu of %zu cached answers differ from "
                 "fresh verification\n",
                 mismatches, pool.size());
    ok = false;
  } else {
    std::printf("equivalence: all %zu cached answers identical to fresh "
                "in-process verification\n",
                pool.size());
  }

  // ---- pass 2: warm cache — must be served from it -------------------------
  const auto before = server->cacheStats();
  const Timer pass2Timer;
  std::size_t pass2Errors = 0;
  std::vector<double> warmLat =
      replay(*server, pool, draws, clients, &pass2Errors, &ok);
  const double pass2Wall = pass2Timer.seconds();
  std::sort(warmLat.begin(), warmLat.end());
  const auto after = server->cacheStats();
  const double hitRate =
      static_cast<double>(after.hits - before.hits) /
      static_cast<double>(kRequests);
  std::printf("pass 2 (warm): %.2f s, %.0f req/s | p50 %.3f ms  p99 %.3f ms "
              "| hit rate %.1f%%\n",
              pass2Wall, static_cast<double>(kRequests) / pass2Wall,
              percentileMs(warmLat, 0.5), percentileMs(warmLat, 0.99),
              hitRate * 100.0);
  if (hitRate < 0.90) {
    std::fprintf(stderr,
                 "hit-rate FAILED: %.1f%% of the warm replay came from the "
                 "cache (>= 90%% required)\n",
                 hitRate * 100.0);
    ok = false;
  }

  // ---- pass 3: warm RESTART — the journal must carry the warm set ----------
  server->stop();
  server.reset();  // the old daemon is gone; only the journal survives
  server = std::make_unique<serve::VerifyServer>(opts);
  const std::uint64_t restored =
      server->collector().counter("serve.journal.restored");
  const Timer pass3Timer;
  std::size_t pass3Errors = 0;
  std::vector<double> restartLat =
      replay(*server, pool, draws, clients, &pass3Errors, &ok);
  const double pass3Wall = pass3Timer.seconds();
  std::sort(restartLat.begin(), restartLat.end());
  const auto restart = server->cacheStats();
  const double restartHitRate = static_cast<double>(restart.hits) /
                                static_cast<double>(kRequests);
  std::printf("pass 3 (restart): restored %llu entries | %.2f s, "
              "%.0f req/s | p50 %.3f ms | hit rate %.1f%%\n",
              static_cast<unsigned long long>(restored), pass3Wall,
              static_cast<double>(kRequests) / pass3Wall,
              percentileMs(restartLat, 0.5), restartHitRate * 100.0);
  if (restartHitRate < 0.90) {
    std::fprintf(stderr,
                 "restart hit-rate FAILED: %.1f%% of the post-restart replay "
                 "came from the persisted cache (>= 90%% required)\n",
                 restartHitRate * 100.0);
    ok = false;
  }
  // Restored answers must still equal the fresh verifications of pass 1.
  std::size_t restartMismatches = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    core::VerifyRequest req = pool[i];
    req.id = 200000 + i;
    std::string perr;
    const auto resp = core::VerifyResponse::parse(
        server->handleLine(compactJson(req.toJson())), &perr);
    if (!resp.has_value() || !resp->error.empty() ||
        resp->verdict != freshVerdicts[i] ||
        resp->counters != freshCounters[i]) {
      std::fprintf(stderr,
                   "restart equivalence cell %zu (N=%u k=%u %s): restored "
                   "answer differs from pass-1 fresh verification\n",
                   i, req.robSize, req.issueWidth,
                   core::strategyName(req.strategy));
      ++restartMismatches;
    }
  }
  if (restartMismatches > 0) {
    std::fprintf(stderr,
                 "restart equivalence FAILED: %zu of %zu restored answers "
                 "differ\n",
                 restartMismatches, pool.size());
    ok = false;
  } else {
    std::printf("restart equivalence: all %zu journal-restored answers "
                "identical to fresh verification\n",
                pool.size());
  }

  json.note("requests", static_cast<double>(kRequests));
  json.note("distinct_cells", static_cast<double>(pool.size()));
  json.note("clients", clients);
  json.note("pass1_wall_seconds", pass1Wall);
  json.note("pass1_requests_per_second",
            static_cast<double>(kRequests) / pass1Wall);
  json.note("pass1_p50_ms", percentileMs(latencies, 0.5));
  json.note("pass1_p90_ms", percentileMs(latencies, 0.9));
  json.note("pass1_p99_ms", percentileMs(latencies, 0.99));
  json.note("pass2_wall_seconds", pass2Wall);
  json.note("pass2_requests_per_second",
            static_cast<double>(kRequests) / pass2Wall);
  json.note("pass2_p50_ms", percentileMs(warmLat, 0.5));
  json.note("pass2_p99_ms", percentileMs(warmLat, 0.99));
  json.note("pass2_hit_rate", hitRate);
  json.note("pass3_wall_seconds", pass3Wall);
  json.note("pass3_hit_rate", restartHitRate);
  json.note("pass3_restored_entries", static_cast<double>(restored));
  json.note("error_responses",
            static_cast<double>(pass1Errors + pass2Errors + pass3Errors));
  json.note("cache_entries", static_cast<double>(after.entries));
  json.note("cache_evictions", static_cast<double>(after.evictions));
  json.note("equivalence_mismatches",
            static_cast<double>(mismatches + restartMismatches));
  json.write();

  return ok ? 0 : 1;
}
