// SAT vs BDD decision-engine comparison on the same translated formulas.
//
// Each cell is verified twice — once with Engine::Sat (Tseitin CNF + the
// CDCL portfolio flow) and once with Engine::Bdd (shared ROBDDs built
// straight from the AIG, no Tseitin) — under the same deterministic logical
// budget. The bench reports both engines' per-stage times and the BDD's
// peak node count, and cross-checks the verdicts: any conclusive
// disagreement makes the bench exit non-zero (the CI cross-check rides on
// this plus `velev_verify --engine both`).
//
// Two cell families:
//   * PE-only strategy inside the fuzzer's feasibility envelope, where the
//     full e_ij/transitivity encoding is exercised (the hard case for both
//     engines — Table 2's blowup is what the budget guards against);
//   * the rewriting strategy at paper-like sizes, where the surviving
//     formula is small and size-independent (Table 5) — the BDD engine
//     should be comfortable here at any ROB size.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

struct Case {
  unsigned n = 0, k = 0;
  bool peOnly = true;
  models::BugSpec bug;
};

bool conclusive(core::Verdict v) {
  return v == core::Verdict::Correct ||
         v == core::Verdict::CounterexampleFound ||
         v == core::Verdict::RewriteMismatch;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);

  std::vector<Case> cases = {
      {2, 1, true, {}},
      {3, 1, true, {}},
      {2, 2, true, {}},
      {3, 2, true, {}},
      {4, 2, true, {}},
      {3, 2, true, {models::BugKind::ForwardingWrongOperand, 2}},
      {4, 2, false, {}},
      {8, 4, false, {}},
  };
  if (bench::fullScale()) {
    cases.push_back({6, 1, true, {}});
    cases.push_back({3, 3, true, {}});
    cases.push_back({16, 4, false, {}});
  }

  // Logical budgets keep the verdicts deterministic; an over-budget cell
  // records timeout/memout and drops out of the agreement check instead of
  // hanging the sweep.
  const ResourceBudget budget = bench::parseBudget(
      /*timeoutSecs=*/0, /*memBudgetMb=*/1024, /*satConflicts=*/300000);

  bench::JsonReport json("engine_compare");
  std::printf("Decision-engine comparison: CNF+CDCL vs shared ROBDDs\n\n");
  std::printf("%5s %-8s %-4s | %-10s | %-9s | %9s | %9s | %11s\n",
              "cell", "strategy", "bug", "sat verdict", "bdd same?",
              "sat [s]", "bdd [s]", "peak nodes");
  std::printf("---------------------+------------+-----------+-----------+-"
              "----------+------------\n");

  unsigned disagreements = 0;
  for (const Case& c : cases) {
    const models::OoOConfig cfg{c.n, c.k};
    core::VerifyRequest req;
    req.robSize = c.n;
    req.issueWidth = c.k;
    req.bug = c.bug;
    req.strategy = c.peOnly ? core::Strategy::PositiveEqualityOnly
                            : core::Strategy::RewritingPlusPositiveEquality;
    bench::applyBudget(req, budget);

    req.engine = core::Engine::Sat;
    Timer t;
    const core::VerifyReport satRep = core::verify(req);
    const double satWall = t.seconds();

    req.engine = core::Engine::Bdd;
    t.reset();
    const core::VerifyReport bddRep = core::verify(req);
    const double bddWall = t.seconds();

    const bool bothConclusive = conclusive(satRep.verdict()) &&
                                conclusive(bddRep.verdict());
    const bool agree = satRep.verdict() == bddRep.verdict();
    if (bothConclusive && !agree) ++disagreements;

    char cell[16];
    std::snprintf(cell, sizeof cell, "%ux%u", c.n, c.k);
    std::printf("%5s %-8s %-4s | %-10s | %-9s | %9.3f | %9.3f | %11llu\n",
                cell, c.peOnly ? "pe" : "rewrite",
                c.bug.kind == models::BugKind::None ? "-" : "fwd",
                core::verdictName(satRep.verdict()),
                !bothConclusive ? "(n/a)" : agree ? "yes" : "NO!",
                satWall, bddWall,
                static_cast<unsigned long long>(bddRep.bddStats.nodesPeak));

    const std::string base = std::string(cell) +
                             (c.peOnly ? "-pe" : "-rw") +
                             (c.bug.kind == models::BugKind::None ? ""
                                                                  : "-bug");
    bench::writeStandardBench(json, cfg, base + "-sat", satRep, satWall);
    bench::writeStandardBench(json, cfg, base + "-bdd", bddRep, bddWall);
  }

  json.note("disagreements", disagreements);
  json.write();
  if (disagreements != 0) {
    std::fprintf(stderr,
                 "error: %u conclusive SAT/BDD verdict disagreement(s)\n",
                 disagreements);
    return 1;
  }
  return 0;
}
