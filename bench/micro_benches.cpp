// Micro-benchmarks (google-benchmark) for the performance-critical
// substrates: expression hash-consing, symbolic simulation stepping, the
// SAT solver's propagation-heavy workloads, the propositional encoder, and
// the rewriting engine — supporting data for the design decisions in
// DESIGN.md.
#include <benchmark/benchmark.h>

#include "core/diagram.hpp"
#include "core/request.hpp"
#include "core/verifier.hpp"
#include "evc/translate.hpp"
#include "models/spec.hpp"
#include "rewrite/engine.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

using namespace velev;

namespace {

void BM_EufmHashCons(benchmark::State& state) {
  for (auto _ : state) {
    eufm::Context cx;
    const eufm::FuncId f = cx.declareFunc("f", 2);
    eufm::Expr acc = cx.termVar("x");
    for (int i = 0; i < 1000; ++i)
      acc = cx.apply(f, {acc, cx.termVar("y" + std::to_string(i % 10))});
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EufmHashCons);

void BM_EufmDedup(benchmark::State& state) {
  // Re-creating an identical expression must hit the hash-cons table.
  eufm::Context cx;
  const eufm::FuncId f = cx.declareFunc("f", 2);
  const eufm::Expr x = cx.termVar("x"), y = cx.termVar("y");
  for (auto _ : state) {
    eufm::Expr acc = x;
    for (int i = 0; i < 1000; ++i) acc = cx.apply(f, {acc, y});
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EufmDedup);

void BM_SymbolicSimulation(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    eufm::Context cx;
    const models::Isa isa = models::Isa::declare(cx);
    auto impl = models::buildOoO(cx, isa, {n, 4});
    auto spec = models::buildSpec(cx, isa);
    const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
    benchmark::DoNotOptimize(d.correctness);
  }
}
BENCHMARK(BM_SymbolicSimulation)->Arg(8)->Arg(32)->Arg(64);

void BM_RewriteEngine(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, 4});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  for (auto _ : state) {
    const rewrite::RewriteResult rw = rewrite::rewriteRobUpdates(
        cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
    benchmark::DoNotOptimize(rw.ok);
  }
}
BENCHMARK(BM_RewriteEngine)->Arg(16)->Arg(64)->Arg(128);

void BM_Translation(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {2 * k, k});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const rewrite::RewriteResult rw = rewrite::rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  eufm::Expr c = cx.mkFalse();
  for (unsigned m = 0; m < d.specPc.size(); ++m)
    c = cx.mkOr(c, cx.mkAnd(cx.mkEq(d.implPc, d.specPc[m]),
                            cx.mkEq(rw.implRegFile, rw.specRegFile[m])));
  for (auto _ : state) {
    evc::TranslateOptions opts;
    opts.conservativeMemory = true;
    const evc::Translation tr = evc::translate(cx, c, opts);
    benchmark::DoNotOptimize(tr.cnf.numVars);
  }
}
BENCHMARK(BM_Translation)->Arg(4)->Arg(8)->Arg(16);

void BM_SatRandom3Sat(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  Rng rng(n * 31 + 7);
  prop::Cnf cnf;
  cnf.numVars = n;
  const unsigned m = static_cast<unsigned>(n * 4.1);  // mostly satisfiable
  for (unsigned i = 0; i < m; ++i) {
    prop::Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(n));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  for (auto _ : state) {
    const sat::Result r = sat::solveCnf(cnf);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(100)->Arg(150);

void BM_SatPigeonhole(benchmark::State& state) {
  const unsigned holes = static_cast<unsigned>(state.range(0));
  prop::Cnf cnf;
  const unsigned pigeons = holes + 1;
  auto var = [&](unsigned p, unsigned h) {
    return static_cast<prop::CnfLit>(p * holes + h + 1);
  };
  cnf.numVars = pigeons * holes;
  for (unsigned p = 0; p < pigeons; ++p) {
    prop::Clause c;
    for (unsigned h = 0; h < holes; ++h) c.push_back(var(p, h));
    cnf.addClause(c);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.addClause({-var(p1, h), -var(p2, h)});
  for (auto _ : state) {
    const sat::Result r = sat::solveCnf(cnf);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7);

void BM_EndToEndVerify(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  core::VerifyRequest req;
  req.robSize = n;
  req.issueWidth = 4;
  for (auto _ : state) {
    const core::VerifyReport rep = core::verify(req);
    benchmark::DoNotOptimize(rep.outcome.verdict);
  }
}
BENCHMARK(BM_EndToEndVerify)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
