
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eufm/eval.cpp" "src/eufm/CMakeFiles/velev_eufm.dir/eval.cpp.o" "gcc" "src/eufm/CMakeFiles/velev_eufm.dir/eval.cpp.o.d"
  "/root/repo/src/eufm/expr.cpp" "src/eufm/CMakeFiles/velev_eufm.dir/expr.cpp.o" "gcc" "src/eufm/CMakeFiles/velev_eufm.dir/expr.cpp.o.d"
  "/root/repo/src/eufm/memsort.cpp" "src/eufm/CMakeFiles/velev_eufm.dir/memsort.cpp.o" "gcc" "src/eufm/CMakeFiles/velev_eufm.dir/memsort.cpp.o.d"
  "/root/repo/src/eufm/print.cpp" "src/eufm/CMakeFiles/velev_eufm.dir/print.cpp.o" "gcc" "src/eufm/CMakeFiles/velev_eufm.dir/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
