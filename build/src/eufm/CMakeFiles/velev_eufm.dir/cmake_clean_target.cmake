file(REMOVE_RECURSE
  "libvelev_eufm.a"
)
