file(REMOVE_RECURSE
  "CMakeFiles/velev_eufm.dir/eval.cpp.o"
  "CMakeFiles/velev_eufm.dir/eval.cpp.o.d"
  "CMakeFiles/velev_eufm.dir/expr.cpp.o"
  "CMakeFiles/velev_eufm.dir/expr.cpp.o.d"
  "CMakeFiles/velev_eufm.dir/memsort.cpp.o"
  "CMakeFiles/velev_eufm.dir/memsort.cpp.o.d"
  "CMakeFiles/velev_eufm.dir/print.cpp.o"
  "CMakeFiles/velev_eufm.dir/print.cpp.o.d"
  "libvelev_eufm.a"
  "libvelev_eufm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_eufm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
