# Empty compiler generated dependencies file for velev_eufm.
# This may be replaced when dependencies are built.
