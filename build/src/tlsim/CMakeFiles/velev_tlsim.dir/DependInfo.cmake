
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlsim/netlist.cpp" "src/tlsim/CMakeFiles/velev_tlsim.dir/netlist.cpp.o" "gcc" "src/tlsim/CMakeFiles/velev_tlsim.dir/netlist.cpp.o.d"
  "/root/repo/src/tlsim/sim.cpp" "src/tlsim/CMakeFiles/velev_tlsim.dir/sim.cpp.o" "gcc" "src/tlsim/CMakeFiles/velev_tlsim.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eufm/CMakeFiles/velev_eufm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
