# Empty dependencies file for velev_tlsim.
# This may be replaced when dependencies are built.
