file(REMOVE_RECURSE
  "CMakeFiles/velev_tlsim.dir/netlist.cpp.o"
  "CMakeFiles/velev_tlsim.dir/netlist.cpp.o.d"
  "CMakeFiles/velev_tlsim.dir/sim.cpp.o"
  "CMakeFiles/velev_tlsim.dir/sim.cpp.o.d"
  "libvelev_tlsim.a"
  "libvelev_tlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_tlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
