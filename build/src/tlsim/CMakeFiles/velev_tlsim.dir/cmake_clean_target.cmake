file(REMOVE_RECURSE
  "libvelev_tlsim.a"
)
