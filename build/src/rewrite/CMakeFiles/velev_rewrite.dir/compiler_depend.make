# Empty compiler generated dependencies file for velev_rewrite.
# This may be replaced when dependencies are built.
