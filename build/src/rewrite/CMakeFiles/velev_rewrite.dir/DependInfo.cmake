
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/contexts.cpp" "src/rewrite/CMakeFiles/velev_rewrite.dir/contexts.cpp.o" "gcc" "src/rewrite/CMakeFiles/velev_rewrite.dir/contexts.cpp.o.d"
  "/root/repo/src/rewrite/engine.cpp" "src/rewrite/CMakeFiles/velev_rewrite.dir/engine.cpp.o" "gcc" "src/rewrite/CMakeFiles/velev_rewrite.dir/engine.cpp.o.d"
  "/root/repo/src/rewrite/subst.cpp" "src/rewrite/CMakeFiles/velev_rewrite.dir/subst.cpp.o" "gcc" "src/rewrite/CMakeFiles/velev_rewrite.dir/subst.cpp.o.d"
  "/root/repo/src/rewrite/update_chain.cpp" "src/rewrite/CMakeFiles/velev_rewrite.dir/update_chain.cpp.o" "gcc" "src/rewrite/CMakeFiles/velev_rewrite.dir/update_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/velev_models.dir/DependInfo.cmake"
  "/root/repo/build/src/eufm/CMakeFiles/velev_eufm.dir/DependInfo.cmake"
  "/root/repo/build/src/tlsim/CMakeFiles/velev_tlsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
