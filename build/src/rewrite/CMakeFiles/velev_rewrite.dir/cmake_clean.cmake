file(REMOVE_RECURSE
  "CMakeFiles/velev_rewrite.dir/contexts.cpp.o"
  "CMakeFiles/velev_rewrite.dir/contexts.cpp.o.d"
  "CMakeFiles/velev_rewrite.dir/engine.cpp.o"
  "CMakeFiles/velev_rewrite.dir/engine.cpp.o.d"
  "CMakeFiles/velev_rewrite.dir/subst.cpp.o"
  "CMakeFiles/velev_rewrite.dir/subst.cpp.o.d"
  "CMakeFiles/velev_rewrite.dir/update_chain.cpp.o"
  "CMakeFiles/velev_rewrite.dir/update_chain.cpp.o.d"
  "libvelev_rewrite.a"
  "libvelev_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
