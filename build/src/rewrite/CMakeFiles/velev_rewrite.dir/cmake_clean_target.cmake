file(REMOVE_RECURSE
  "libvelev_rewrite.a"
)
