file(REMOVE_RECURSE
  "CMakeFiles/velev_prop.dir/cnf.cpp.o"
  "CMakeFiles/velev_prop.dir/cnf.cpp.o.d"
  "CMakeFiles/velev_prop.dir/prop.cpp.o"
  "CMakeFiles/velev_prop.dir/prop.cpp.o.d"
  "libvelev_prop.a"
  "libvelev_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
