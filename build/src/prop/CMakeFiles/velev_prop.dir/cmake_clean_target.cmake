file(REMOVE_RECURSE
  "libvelev_prop.a"
)
