# Empty compiler generated dependencies file for velev_prop.
# This may be replaced when dependencies are built.
