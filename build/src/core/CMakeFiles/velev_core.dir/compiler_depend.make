# Empty compiler generated dependencies file for velev_core.
# This may be replaced when dependencies are built.
