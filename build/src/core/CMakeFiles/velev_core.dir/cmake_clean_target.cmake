file(REMOVE_RECURSE
  "libvelev_core.a"
)
