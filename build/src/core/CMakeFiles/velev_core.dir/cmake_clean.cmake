file(REMOVE_RECURSE
  "CMakeFiles/velev_core.dir/diagram.cpp.o"
  "CMakeFiles/velev_core.dir/diagram.cpp.o.d"
  "CMakeFiles/velev_core.dir/verifier.cpp.o"
  "CMakeFiles/velev_core.dir/verifier.cpp.o.d"
  "libvelev_core.a"
  "libvelev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
