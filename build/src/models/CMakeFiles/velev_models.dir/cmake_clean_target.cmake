file(REMOVE_RECURSE
  "libvelev_models.a"
)
