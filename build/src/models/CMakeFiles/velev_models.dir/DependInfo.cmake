
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/ooo.cpp" "src/models/CMakeFiles/velev_models.dir/ooo.cpp.o" "gcc" "src/models/CMakeFiles/velev_models.dir/ooo.cpp.o.d"
  "/root/repo/src/models/spec.cpp" "src/models/CMakeFiles/velev_models.dir/spec.cpp.o" "gcc" "src/models/CMakeFiles/velev_models.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlsim/CMakeFiles/velev_tlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/eufm/CMakeFiles/velev_eufm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
