file(REMOVE_RECURSE
  "CMakeFiles/velev_models.dir/ooo.cpp.o"
  "CMakeFiles/velev_models.dir/ooo.cpp.o.d"
  "CMakeFiles/velev_models.dir/spec.cpp.o"
  "CMakeFiles/velev_models.dir/spec.cpp.o.d"
  "libvelev_models.a"
  "libvelev_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
