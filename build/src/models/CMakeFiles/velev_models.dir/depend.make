# Empty dependencies file for velev_models.
# This may be replaced when dependencies are built.
