# Empty compiler generated dependencies file for velev_sat.
# This may be replaced when dependencies are built.
