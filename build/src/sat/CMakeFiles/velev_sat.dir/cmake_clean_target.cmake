file(REMOVE_RECURSE
  "libvelev_sat.a"
)
