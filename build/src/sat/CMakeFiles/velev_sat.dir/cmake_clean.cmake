file(REMOVE_RECURSE
  "CMakeFiles/velev_sat.dir/drat.cpp.o"
  "CMakeFiles/velev_sat.dir/drat.cpp.o.d"
  "CMakeFiles/velev_sat.dir/solver.cpp.o"
  "CMakeFiles/velev_sat.dir/solver.cpp.o.d"
  "libvelev_sat.a"
  "libvelev_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
