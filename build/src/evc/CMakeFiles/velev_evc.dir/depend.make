# Empty dependencies file for velev_evc.
# This may be replaced when dependencies are built.
