
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evc/encode.cpp" "src/evc/CMakeFiles/velev_evc.dir/encode.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/encode.cpp.o.d"
  "/root/repo/src/evc/memory.cpp" "src/evc/CMakeFiles/velev_evc.dir/memory.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/memory.cpp.o.d"
  "/root/repo/src/evc/polarity.cpp" "src/evc/CMakeFiles/velev_evc.dir/polarity.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/polarity.cpp.o.d"
  "/root/repo/src/evc/transitivity.cpp" "src/evc/CMakeFiles/velev_evc.dir/transitivity.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/transitivity.cpp.o.d"
  "/root/repo/src/evc/translate.cpp" "src/evc/CMakeFiles/velev_evc.dir/translate.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/translate.cpp.o.d"
  "/root/repo/src/evc/ufelim.cpp" "src/evc/CMakeFiles/velev_evc.dir/ufelim.cpp.o" "gcc" "src/evc/CMakeFiles/velev_evc.dir/ufelim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eufm/CMakeFiles/velev_eufm.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/velev_prop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
