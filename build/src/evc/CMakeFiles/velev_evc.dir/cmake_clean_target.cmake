file(REMOVE_RECURSE
  "libvelev_evc.a"
)
