file(REMOVE_RECURSE
  "CMakeFiles/velev_evc.dir/encode.cpp.o"
  "CMakeFiles/velev_evc.dir/encode.cpp.o.d"
  "CMakeFiles/velev_evc.dir/memory.cpp.o"
  "CMakeFiles/velev_evc.dir/memory.cpp.o.d"
  "CMakeFiles/velev_evc.dir/polarity.cpp.o"
  "CMakeFiles/velev_evc.dir/polarity.cpp.o.d"
  "CMakeFiles/velev_evc.dir/transitivity.cpp.o"
  "CMakeFiles/velev_evc.dir/transitivity.cpp.o.d"
  "CMakeFiles/velev_evc.dir/translate.cpp.o"
  "CMakeFiles/velev_evc.dir/translate.cpp.o.d"
  "CMakeFiles/velev_evc.dir/ufelim.cpp.o"
  "CMakeFiles/velev_evc.dir/ufelim.cpp.o.d"
  "libvelev_evc.a"
  "libvelev_evc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_evc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
