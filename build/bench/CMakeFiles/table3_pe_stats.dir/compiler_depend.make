# Empty compiler generated dependencies file for table3_pe_stats.
# This may be replaced when dependencies are built.
