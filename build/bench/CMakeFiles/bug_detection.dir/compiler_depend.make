# Empty compiler generated dependencies file for bug_detection.
# This may be replaced when dependencies are built.
