# Empty dependencies file for speedup_headline.
# This may be replaced when dependencies are built.
