file(REMOVE_RECURSE
  "CMakeFiles/speedup_headline.dir/speedup_headline.cpp.o"
  "CMakeFiles/speedup_headline.dir/speedup_headline.cpp.o.d"
  "speedup_headline"
  "speedup_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
