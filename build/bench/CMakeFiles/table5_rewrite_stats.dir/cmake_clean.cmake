file(REMOVE_RECURSE
  "CMakeFiles/table5_rewrite_stats.dir/table5_rewrite_stats.cpp.o"
  "CMakeFiles/table5_rewrite_stats.dir/table5_rewrite_stats.cpp.o.d"
  "table5_rewrite_stats"
  "table5_rewrite_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rewrite_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
