# Empty compiler generated dependencies file for table5_rewrite_stats.
# This may be replaced when dependencies are built.
