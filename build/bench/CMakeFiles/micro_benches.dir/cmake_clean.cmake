file(REMOVE_RECURSE
  "CMakeFiles/micro_benches.dir/micro_benches.cpp.o"
  "CMakeFiles/micro_benches.dir/micro_benches.cpp.o.d"
  "micro_benches"
  "micro_benches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
