# Empty dependencies file for micro_benches.
# This may be replaced when dependencies are built.
