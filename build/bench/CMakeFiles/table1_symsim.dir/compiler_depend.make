# Empty compiler generated dependencies file for table1_symsim.
# This may be replaced when dependencies are built.
