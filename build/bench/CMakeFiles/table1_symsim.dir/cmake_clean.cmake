file(REMOVE_RECURSE
  "CMakeFiles/table1_symsim.dir/table1_symsim.cpp.o"
  "CMakeFiles/table1_symsim.dir/table1_symsim.cpp.o.d"
  "table1_symsim"
  "table1_symsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_symsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
