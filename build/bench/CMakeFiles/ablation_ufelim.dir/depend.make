# Empty dependencies file for ablation_ufelim.
# This may be replaced when dependencies are built.
