file(REMOVE_RECURSE
  "CMakeFiles/ablation_ufelim.dir/ablation_ufelim.cpp.o"
  "CMakeFiles/ablation_ufelim.dir/ablation_ufelim.cpp.o.d"
  "ablation_ufelim"
  "ablation_ufelim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ufelim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
