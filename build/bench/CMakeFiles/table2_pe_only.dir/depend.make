# Empty dependencies file for table2_pe_only.
# This may be replaced when dependencies are built.
