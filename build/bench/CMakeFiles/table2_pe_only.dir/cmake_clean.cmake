file(REMOVE_RECURSE
  "CMakeFiles/table2_pe_only.dir/table2_pe_only.cpp.o"
  "CMakeFiles/table2_pe_only.dir/table2_pe_only.cpp.o.d"
  "table2_pe_only"
  "table2_pe_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pe_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
