# Empty compiler generated dependencies file for table4_rewrite_time.
# This may be replaced when dependencies are built.
