# Empty dependencies file for velev_verify.
# This may be replaced when dependencies are built.
