file(REMOVE_RECURSE
  "CMakeFiles/velev_verify.dir/velev_verify.cpp.o"
  "CMakeFiles/velev_verify.dir/velev_verify.cpp.o.d"
  "velev_verify"
  "velev_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velev_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
