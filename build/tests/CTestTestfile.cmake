# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/eufm_test[1]_include.cmake")
include("/root/repo/build/tests/prop_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/drat_test[1]_include.cmake")
include("/root/repo/build/tests/tlsim_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/evc_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
