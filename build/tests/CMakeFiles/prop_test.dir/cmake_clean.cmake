file(REMOVE_RECURSE
  "CMakeFiles/prop_test.dir/prop_test.cpp.o"
  "CMakeFiles/prop_test.dir/prop_test.cpp.o.d"
  "prop_test"
  "prop_test.pdb"
  "prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
