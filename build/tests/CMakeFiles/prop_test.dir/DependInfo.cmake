
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prop_test.cpp" "tests/CMakeFiles/prop_test.dir/prop_test.cpp.o" "gcc" "tests/CMakeFiles/prop_test.dir/prop_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/velev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/velev_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/evc/CMakeFiles/velev_evc.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/velev_models.dir/DependInfo.cmake"
  "/root/repo/build/src/tlsim/CMakeFiles/velev_tlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/velev_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/velev_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/eufm/CMakeFiles/velev_eufm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
