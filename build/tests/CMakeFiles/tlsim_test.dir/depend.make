# Empty dependencies file for tlsim_test.
# This may be replaced when dependencies are built.
