file(REMOVE_RECURSE
  "CMakeFiles/tlsim_test.dir/tlsim_test.cpp.o"
  "CMakeFiles/tlsim_test.dir/tlsim_test.cpp.o.d"
  "tlsim_test"
  "tlsim_test.pdb"
  "tlsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
