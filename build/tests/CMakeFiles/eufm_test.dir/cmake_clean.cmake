file(REMOVE_RECURSE
  "CMakeFiles/eufm_test.dir/eufm_test.cpp.o"
  "CMakeFiles/eufm_test.dir/eufm_test.cpp.o.d"
  "eufm_test"
  "eufm_test.pdb"
  "eufm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eufm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
