# Empty compiler generated dependencies file for eufm_test.
# This may be replaced when dependencies are built.
