# Empty dependencies file for evc_test.
# This may be replaced when dependencies are built.
