file(REMOVE_RECURSE
  "CMakeFiles/sat_dimacs.dir/sat_dimacs.cpp.o"
  "CMakeFiles/sat_dimacs.dir/sat_dimacs.cpp.o.d"
  "sat_dimacs"
  "sat_dimacs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_dimacs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
