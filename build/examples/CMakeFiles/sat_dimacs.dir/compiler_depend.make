# Empty compiler generated dependencies file for sat_dimacs.
# This may be replaced when dependencies are built.
