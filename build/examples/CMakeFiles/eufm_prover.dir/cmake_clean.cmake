file(REMOVE_RECURSE
  "CMakeFiles/eufm_prover.dir/eufm_prover.cpp.o"
  "CMakeFiles/eufm_prover.dir/eufm_prover.cpp.o.d"
  "eufm_prover"
  "eufm_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eufm_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
