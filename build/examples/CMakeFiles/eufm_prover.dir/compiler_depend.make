# Empty compiler generated dependencies file for eufm_prover.
# This may be replaced when dependencies are built.
